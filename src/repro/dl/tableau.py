"""A tableau satisfiability procedure for SHOIN(D) knowledge bases.

This is the classical reasoning substrate the paper assumes ("mature
reasoning mechanisms of classical description logic"): a completion-graph
tableau in the style of Horrocks & Sattler covering

* Boolean constructors, full existential/value restrictions;
* unqualified number restrictions (the SHOIN ``>= n R`` / ``<= n R``);
* role hierarchies with inverse roles, transitive roles via the
  ``all+``-propagation rule;
* nominals (``OneOf``), individual (in)equality, ABox reasoning;
* datatype roles and ranges with a witness-search concrete domain.

The TBox is *internalised*: each inclusion ``C [= D`` contributes the
universal constraint ``nnf(not C or D)`` added to every node.  Termination
on blockable nodes uses anywhere pairwise (double) blocking, as required in
the presence of inverse roles.  Nondeterminism (disjunction, at-most
merging, nominal choice) is explored by depth-first search with full graph
copying at choice points — simple, and fast enough for the workloads of
this reproduction.

Known limitation (documented in README): the corner where nominals,
inverse roles and number restrictions interact (the "NIO" case needing the
NN-rule) is handled by merging alone, which can in exotic KBs miss
satisfiability; the finite-model enumerator cross-checks the tableau on
randomised tests to keep this honest.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .axioms import ConceptInclusion
from .concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)
from .datatypes import DataRange, DataTop, find_witnesses
from .errors import ReasonerLimitExceeded
from .individuals import Individual
from .kb import KnowledgeBase
from .nnf import negation_nnf, nnf
from .roles import AtomicRole, DatatypeRole, ObjectRole
from .stats import ReasonerStats

NodeId = int
DEFAULT_MAX_NODES = 4000
DEFAULT_MAX_BRANCHES = 200_000


@dataclass
class _Graph:
    """A completion graph: nodes, labels, edges, and distinctness facts.

    Object edges are stored in the named-role direction only (an ``R-``
    edge is recorded as an ``R`` edge the other way).  Data nodes live in a
    separate namespace with range labels.
    """

    labels: Dict[NodeId, Set[Concept]] = field(default_factory=dict)
    edges: Dict[Tuple[NodeId, NodeId], Set[AtomicRole]] = field(default_factory=dict)
    parent: Dict[NodeId, Optional[NodeId]] = field(default_factory=dict)
    roots: Dict[Individual, NodeId] = field(default_factory=dict)
    root_nodes: Set[NodeId] = field(default_factory=set)
    distinct: Set[FrozenSet[NodeId]] = field(default_factory=set)
    data_labels: Dict[NodeId, Set[DataRange]] = field(default_factory=dict)
    data_edges: Dict[Tuple[NodeId, NodeId], Set[DatatypeRole]] = field(
        default_factory=dict
    )
    data_distinct: Set[FrozenSet[NodeId]] = field(default_factory=set)
    forbidden: Dict[Tuple[NodeId, NodeId], Set[AtomicRole]] = field(
        default_factory=dict
    )
    next_id: int = 0
    creation_order: Dict[NodeId, int] = field(default_factory=dict)

    def copy(self) -> "_Graph":
        clone = _Graph(
            labels={n: set(s) for n, s in self.labels.items()},
            edges={e: set(s) for e, s in self.edges.items()},
            parent=dict(self.parent),
            roots=dict(self.roots),
            root_nodes=set(self.root_nodes),
            distinct=set(self.distinct),
            data_labels={n: set(s) for n, s in self.data_labels.items()},
            data_edges={e: set(s) for e, s in self.data_edges.items()},
            data_distinct=set(self.data_distinct),
            forbidden={e: set(s) for e, s in self.forbidden.items()},
            next_id=self.next_id,
            creation_order=dict(self.creation_order),
        )
        return clone

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def new_node(self, parent: Optional[NodeId]) -> NodeId:
        node = self.next_id
        self.next_id += 1
        self.labels[node] = set()
        self.parent[node] = parent
        self.creation_order[node] = node
        return node

    def new_data_node(self) -> NodeId:
        node = self.next_id
        self.next_id += 1
        self.data_labels[node] = set()
        return node

    def nodes(self) -> List[NodeId]:
        return sorted(self.labels)

    def is_root(self, node: NodeId) -> bool:
        return node in self.root_nodes

    # ------------------------------------------------------------------
    # Edges and neighbours
    # ------------------------------------------------------------------
    def add_edge(self, source: NodeId, target: NodeId, role: ObjectRole) -> None:
        if role.is_inverse:
            source, target, role = target, source, role.named
        self.edges.setdefault((source, target), set()).add(role)

    def successors(self, node: NodeId) -> Iterator[Tuple[NodeId, Set[AtomicRole]]]:
        for (source, target), roles in self.edges.items():
            if source == node:
                yield target, roles

    def predecessors(self, node: NodeId) -> Iterator[Tuple[NodeId, Set[AtomicRole]]]:
        for (source, target), roles in self.edges.items():
            if target == node:
                yield source, roles

    def neighbours(
        self,
        node: NodeId,
        role: ObjectRole,
        hierarchy: Dict[ObjectRole, FrozenSet[ObjectRole]],
    ) -> Set[NodeId]:
        """All ``role``-neighbours of ``node`` respecting hierarchy and inverses."""
        found: Set[NodeId] = set()
        for target, roles in self.successors(node):
            for edge_role in roles:
                if role in hierarchy.get(edge_role, frozenset({edge_role})):
                    found.add(target)
                    break
        for source, roles in self.predecessors(node):
            for edge_role in roles:
                inverse = edge_role.inverse()
                if role in hierarchy.get(inverse, frozenset({inverse})):
                    found.add(source)
                    break
        return found

    def edge_roles_between(
        self,
        source: NodeId,
        target: NodeId,
    ) -> FrozenSet[ObjectRole]:
        """Role expressions connecting ``source`` to ``target`` (both directions)."""
        roles: Set[ObjectRole] = set(self.edges.get((source, target), ()))
        for role in self.edges.get((target, source), ()):
            roles.add(role.inverse())
        return frozenset(roles)

    def data_neighbours(
        self,
        node: NodeId,
        role: DatatypeRole,
        hierarchy: Dict[DatatypeRole, FrozenSet[DatatypeRole]],
    ) -> Set[NodeId]:
        found: Set[NodeId] = set()
        for (source, target), roles in self.data_edges.items():
            if source != node:
                continue
            for edge_role in roles:
                if role in hierarchy.get(edge_role, frozenset({edge_role})):
                    found.add(target)
                    break
        return found

    def are_distinct(self, left: NodeId, right: NodeId) -> bool:
        return frozenset({left, right}) in self.distinct

    def set_distinct(self, left: NodeId, right: NodeId) -> None:
        if left != right:
            self.distinct.add(frozenset({left, right}))

    # ------------------------------------------------------------------
    # Merging (the <=-rule and nominal identification)
    # ------------------------------------------------------------------
    def merge(self, victim: NodeId, survivor: NodeId) -> bool:
        """Merge ``victim`` into ``survivor``; False signals an immediate clash."""
        if victim == survivor:
            return True
        if self.are_distinct(victim, survivor):
            return False
        self.labels[survivor] |= self.labels.pop(victim)
        for (source, target) in list(self.edges):
            if victim in (source, target):
                roles = self.edges.pop((source, target))
                new_source = survivor if source == victim else source
                new_target = survivor if target == victim else target
                self.edges.setdefault((new_source, new_target), set()).update(roles)
        for (source, target) in list(self.data_edges):
            if source == victim:
                roles = self.data_edges.pop((source, target))
                self.data_edges.setdefault((survivor, target), set()).update(roles)
        for pair in list(self.distinct):
            if victim in pair:
                self.distinct.discard(pair)
                (other,) = pair - {victim}
                if other == survivor:
                    return False
                self.distinct.add(frozenset({survivor, other}))
        for (source, target) in list(self.forbidden):
            if victim in (source, target):
                roles = self.forbidden.pop((source, target))
                new_source = survivor if source == victim else source
                new_target = survivor if target == victim else target
                self.forbidden.setdefault((new_source, new_target), set()).update(
                    roles
                )
        for individual, node in list(self.roots.items()):
            if node == victim:
                self.roots[individual] = survivor
        if victim in self.root_nodes:
            self.root_nodes.discard(victim)
            self.root_nodes.add(survivor)
        self.parent.pop(victim, None)
        # Children of the victim re-hang under the survivor so blocking
        # ancestry stays acyclic.
        for node, parent in list(self.parent.items()):
            if parent == victim:
                self.parent[node] = survivor
        self.creation_order[survivor] = min(
            self.creation_order.get(survivor, survivor),
            self.creation_order.get(victim, victim),
        )
        self.creation_order.pop(victim, None)
        return True

    def merge_data(self, victim: NodeId, survivor: NodeId) -> bool:
        if victim == survivor:
            return True
        if frozenset({victim, survivor}) in self.data_distinct:
            return False
        self.data_labels[survivor] |= self.data_labels.pop(victim)
        for (source, target) in list(self.data_edges):
            if target == victim:
                roles = self.data_edges.pop((source, target))
                self.data_edges.setdefault((source, survivor), set()).update(roles)
        for pair in list(self.data_distinct):
            if victim in pair:
                self.data_distinct.discard(pair)
                (other,) = pair - {victim}
                if other == survivor:
                    return False
                self.data_distinct.add(frozenset({survivor, other}))
        return True


class Tableau:
    """Tableau satisfiability checker for one knowledge base.

    The expensive KB preprocessing (NNF of universal constraints, role
    hierarchy closure) happens once in the constructor; each
    :meth:`is_satisfiable` call explores a fresh completion graph, with
    optional extra assertions (used for entailment-by-refutation).
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        use_bcp: bool = True,
        use_absorption: bool = True,
        stats: Optional["ReasonerStats"] = None,
    ):
        self.kb = kb
        self.max_nodes = max_nodes
        self.max_branches = max_branches
        #: Optional shared counters (runs, branches) updated by every call.
        self.stats = stats
        #: Boolean constraint propagation on disjunctions (fail-first +
        #: immediate-clash screening).  Disable only for ablation studies.
        self.use_bcp = use_bcp
        #: Absorption: inclusions with an atomic left side fire lazily
        #: (``A in label -> add C``) instead of contributing a universal
        #: disjunction to every node.  Sound and complete because the
        #: canonical model interprets atomic concepts by their labels.
        self.use_absorption = use_absorption
        self.hierarchy = kb.role_superroles()
        self.data_hierarchy = self._datatype_hierarchy()
        self.transitive = kb.transitive_roles()
        self.universal: List[Concept] = []
        self.absorbed: Dict[AtomicConcept, List[Concept]] = {}
        for inclusion in kb.concept_inclusions:
            if use_absorption and isinstance(inclusion.sub, AtomicConcept):
                self.absorbed.setdefault(inclusion.sub, []).append(
                    nnf(inclusion.sup)
                )
            else:
                self.universal.append(
                    nnf(Or.of(negation_nnf(inclusion.sub), inclusion.sup))
                )
        self._branches_used = 0
        self._sort_keys: Dict[Concept, str] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def is_satisfiable(
        self, extra_assertions: Iterable = ()
    ) -> bool:
        """Whether the KB (plus optional extra ABox axioms) has a model."""
        if self.stats is not None:
            self.stats.tableau_runs += 1
        self._complete_graph: Optional[_Graph] = None
        graph = self._initial_graph(extra_assertions)
        if graph is None:
            return False
        self._branches_used = 0
        return self._solve(graph)

    def concept_satisfiable(self, concept: Concept) -> bool:
        """Whether ``concept`` is satisfiable w.r.t. the KB."""
        from .axioms import ConceptAssertion

        probe = Individual("__probe__")
        return self.is_satisfiable([ConceptAssertion(probe, concept)])

    def extract_model(self):
        """A finite model from the last successful satisfiability run.

        Returns an :class:`~repro.semantics.interpretation.Interpretation`
        built from the completion graph, or ``None`` when no finite model
        can be read off: no successful run yet, or the candidate fails
        verification against the KB (extraction is *checked*, never
        trusted — in particular, graphs completed through blocking
        usually describe infinite canonical models and fail the check).

        Construction: alive nodes form the domain; atomic concept labels
        give concept extensions; role extensions start from
        hierarchy-expanded neighbour pairs and are closed under
        transitivity and sub-role propagation to a fixpoint; data values
        come from the witness assignment of the final concrete-domain
        check.
        """
        from ..semantics.interpretation import Interpretation

        graph = getattr(self, "_complete_graph", None)
        if graph is None:
            return None
        nodes = graph.nodes()
        concept_ext = {
            concept: frozenset(
                node
                for node in nodes
                if concept in graph.labels[node]
            )
            for concept in self.kb.concepts_in_signature()
        }
        named_roles = sorted(self.kb.object_roles_in_signature())
        role_ext: Dict[AtomicRole, Set[Tuple[NodeId, NodeId]]] = {
            role: {
                (x, y)
                for x in nodes
                for y in graph.neighbours(x, role, self.hierarchy)
            }
            for role in named_roles
        }
        changed = True
        while changed:
            changed = False
            for role in named_roles:
                if self.kb.is_transitive(role):
                    closed = _transitive_closure(role_ext[role])
                    if closed != role_ext[role]:
                        role_ext[role] = closed
                        changed = True
            for inclusion in self.kb.role_inclusions:
                sub_pairs = _role_expression_pairs(role_ext, inclusion.sub)
                sup_name = inclusion.sup.named
                oriented = (
                    {(y, x) for (x, y) in sub_pairs}
                    if inclusion.sup.is_inverse
                    else sub_pairs
                )
                if not oriented <= role_ext.get(sup_name, set()):
                    role_ext.setdefault(sup_name, set()).update(oriented)
                    changed = True
        data_role_ext: Dict[DatatypeRole, Set] = {}
        assignment = getattr(self, "_data_assignment", {})
        for (node, data_node), roles in graph.data_edges.items():
            value = assignment.get(data_node)
            if value is None:
                continue
            for role in roles:
                for super_role in self.data_hierarchy.get(
                    role, frozenset({role})
                ):
                    data_role_ext.setdefault(super_role, set()).add(
                        (node, value)
                    )
        interpretation = Interpretation(
            domain=frozenset(nodes),
            concept_ext={c: frozenset(e) for c, e in concept_ext.items()},
            role_ext={r: frozenset(e) for r, e in role_ext.items()},
            data_role_ext={
                u: frozenset(e) for u, e in data_role_ext.items()
            },
            individual_map={
                individual: node
                for individual, node in graph.roots.items()
                if node in graph.labels
            },
        )
        if not interpretation.is_model(self.kb):
            return None
        return interpretation

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _datatype_hierarchy(self) -> Dict[DatatypeRole, FrozenSet[DatatypeRole]]:
        edges: Dict[DatatypeRole, Set[DatatypeRole]] = {}
        roles: Set[DatatypeRole] = set(self.kb.datatype_roles_in_signature())
        for inclusion in self.kb.datatype_role_inclusions:
            edges.setdefault(inclusion.sub, set()).add(inclusion.sup)
            roles |= {inclusion.sub, inclusion.sup}
        closure: Dict[DatatypeRole, FrozenSet[DatatypeRole]] = {}
        for role in roles:
            reached = {role}
            frontier = [role]
            while frontier:
                current = frontier.pop()
                for nxt in edges.get(current, ()):
                    if nxt not in reached:
                        reached.add(nxt)
                        frontier.append(nxt)
            closure[role] = frozenset(reached)
        return closure

    def _initial_graph(self, extra_assertions: Iterable) -> Optional[_Graph]:
        from .axioms import (
            ConceptAssertion,
            DataAssertion,
            DifferentIndividuals,
            NegativeRoleAssertion,
            RoleAssertion,
            SameIndividual,
        )

        graph = _Graph()
        individuals = set(self.kb.individuals_in_signature())
        extra = list(extra_assertions)
        for axiom in extra:
            if isinstance(axiom, ConceptAssertion):
                individuals.add(axiom.individual)
            elif isinstance(axiom, (RoleAssertion, NegativeRoleAssertion)):
                individuals |= {axiom.source, axiom.target}
            elif isinstance(axiom, (SameIndividual, DifferentIndividuals)):
                individuals |= {axiom.left, axiom.right}
            elif isinstance(axiom, DataAssertion):
                individuals.add(axiom.source)
        if not individuals:
            individuals = {Individual("__root__")}
        for individual in sorted(individuals):
            node = graph.new_node(None)
            graph.roots[individual] = node
            graph.root_nodes.add(node)
            graph.labels[node].add(OneOf(frozenset({individual})))

        def node_of(individual: Individual) -> NodeId:
            return graph.roots[individual]

        for axiom in itertools.chain(self.kb.abox(), extra):
            if isinstance(axiom, ConceptAssertion):
                graph.labels[node_of(axiom.individual)].add(nnf(axiom.concept))
            elif isinstance(axiom, RoleAssertion):
                graph.add_edge(
                    node_of(axiom.source), node_of(axiom.target), axiom.role
                )
            elif isinstance(axiom, NegativeRoleAssertion):
                normalised = axiom.normalised()
                named = normalised.role
                assert isinstance(named, AtomicRole)
                graph.forbidden.setdefault(
                    (node_of(normalised.source), node_of(normalised.target)),
                    set(),
                ).add(named)
            elif isinstance(axiom, DataAssertion):
                data_node = graph.new_data_node()
                graph.data_labels[data_node].add(
                    _ExactValue(axiom.value.datatype, axiom.value.lexical)
                )
                graph.data_edges.setdefault(
                    (node_of(axiom.source), data_node), set()
                ).add(axiom.role)
            elif isinstance(axiom, SameIndividual):
                if not graph.merge(
                    node_of(axiom.left), node_of(axiom.right)
                ):
                    return None
            elif isinstance(axiom, DifferentIndividuals):
                left, right = node_of(axiom.left), node_of(axiom.right)
                if left == right:
                    return None
                graph.set_distinct(left, right)
        return graph

    # ------------------------------------------------------------------
    # Search driver
    # ------------------------------------------------------------------
    def _solve(self, graph: _Graph) -> bool:
        self._branches_used += 1
        if self.stats is not None:
            self.stats.branches_explored += 1
        if self._branches_used > self.max_branches:
            raise ReasonerLimitExceeded(
                f"tableau exceeded {self.max_branches} branches"
            )
        while True:
            if len(graph.labels) > self.max_nodes:
                raise ReasonerLimitExceeded(
                    f"tableau exceeded {self.max_nodes} nodes"
                )
            status = self._apply_deterministic(graph)
            if status == "clash":
                return False
            if status == "changed":
                continue
            choice = self._find_choice(graph)
            if choice is None:
                return self._final_checks(graph)
            for alternative in choice:
                branch = graph.copy()
                if alternative(branch) and self._solve(branch):
                    return True
            return False

    # ------------------------------------------------------------------
    # Deterministic expansion
    # ------------------------------------------------------------------
    def _apply_deterministic(self, graph: _Graph) -> str:
        changed = False
        # Negative role assertions: a forbidden pair that became an actual
        # neighbour pair (directly, through hierarchy/merging, or through a
        # chain of a transitive subrole) clashes.
        for (source, target), roles in graph.forbidden.items():
            if source not in graph.labels or target not in graph.labels:
                continue
            for role in roles:
                if target in graph.neighbours(source, role, self.hierarchy):
                    return "clash"
                for sub_role, supers in self.hierarchy.items():
                    if role not in supers or not self.kb.is_transitive(sub_role):
                        continue
                    if self._chain_reachable(graph, source, target, sub_role):
                        return "clash"
        blocked = self._blocked_nodes(graph)
        for node in graph.nodes():
            label = graph.labels[node]
            if self._has_clash(graph, node):
                return "clash"
            for concept in list(label):
                if isinstance(concept, Top):
                    continue
                if isinstance(concept, And):
                    for operand in concept.operands:
                        if operand not in label:
                            label.add(operand)
                            changed = True
                # Absorbed inclusions: A in label fires its definitions.
                if isinstance(concept, AtomicConcept):
                    for consequence in self.absorbed.get(concept, ()):
                        if consequence not in label:
                            label.add(consequence)
                            changed = True
            # Universal (internalised TBox) constraints.
            for constraint in self.universal:
                if constraint not in label:
                    label.add(constraint)
                    changed = True
            if changed:
                continue
            # all-rule and all+-rule.
            for concept in list(label):
                if isinstance(concept, Forall):
                    for neighbour in graph.neighbours(
                        node, concept.role, self.hierarchy
                    ):
                        if concept.filler not in graph.labels[neighbour]:
                            graph.labels[neighbour].add(concept.filler)
                            changed = True
                    changed |= self._propagate_transitive(graph, node, concept)
                elif isinstance(concept, DataForall):
                    for neighbour in graph.data_neighbours(
                        node, concept.role, self.data_hierarchy
                    ):
                        if concept.range not in graph.data_labels[neighbour]:
                            graph.data_labels[neighbour].add(concept.range)
                            changed = True
            if changed:
                continue
            if node in blocked:
                continue
            # some-rule.
            for concept in list(label):
                if isinstance(concept, Exists):
                    if not any(
                        concept.filler in graph.labels[n]
                        for n in graph.neighbours(node, concept.role, self.hierarchy)
                    ):
                        fresh = graph.new_node(node)
                        graph.add_edge(node, fresh, concept.role)
                        graph.labels[fresh].add(concept.filler)
                        changed = True
                elif isinstance(concept, AtLeast):
                    neighbours = graph.neighbours(node, concept.role, self.hierarchy)
                    if not self._has_n_pairwise_distinct(
                        graph, neighbours, concept.n
                    ):
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = graph.new_node(node)
                            graph.add_edge(node, fresh, concept.role)
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            graph.set_distinct(left, right)
                        if concept.n > 0:
                            changed = True
                elif isinstance(concept, QualifiedAtLeast):
                    matching = {
                        y
                        for y in graph.neighbours(node, concept.role, self.hierarchy)
                        if concept.filler in graph.labels[y]
                    }
                    if not self._has_n_pairwise_distinct(
                        graph, matching, concept.n
                    ):
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = graph.new_node(node)
                            graph.add_edge(node, fresh, concept.role)
                            graph.labels[fresh].add(concept.filler)
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            graph.set_distinct(left, right)
                        if concept.n > 0:
                            changed = True
                elif isinstance(concept, DataExists):
                    if not any(
                        concept.range in graph.data_labels[n]
                        for n in graph.data_neighbours(
                            node, concept.role, self.data_hierarchy
                        )
                    ):
                        fresh = graph.new_data_node()
                        graph.data_edges.setdefault((node, fresh), set()).add(
                            concept.role
                        )
                        graph.data_labels[fresh].add(concept.range)
                        changed = True
                elif isinstance(concept, DataAtLeast):
                    neighbours = graph.data_neighbours(
                        node, concept.role, self.data_hierarchy
                    )
                    distinct_count = self._max_pairwise_distinct_data(
                        graph, neighbours
                    )
                    if distinct_count < concept.n:
                        fresh_nodes = []
                        for _ in range(concept.n):
                            fresh = graph.new_data_node()
                            graph.data_edges.setdefault((node, fresh), set()).add(
                                concept.role
                            )
                            graph.data_labels[fresh].add(DataTop())
                            fresh_nodes.append(fresh)
                        for left, right in itertools.combinations(fresh_nodes, 2):
                            graph.data_distinct.add(frozenset({left, right}))
                        if concept.n > 0:
                            changed = True
            if changed:
                continue
        # Deterministic nominal identification: two alive nodes sharing a
        # singleton nominal must be the same element.
        for concept, holders in self._nominal_holders(graph).items():
            if len(holders) > 1:
                ordered = sorted(holders, key=lambda n: graph.creation_order[n])
                survivor = ordered[0]
                for victim in ordered[1:]:
                    if not graph.merge(victim, survivor):
                        return "clash"
                return "changed"
        if changed:
            return "changed"
        return "stable"

    def _chain_reachable(
        self, graph: _Graph, source: NodeId, target: NodeId, role: ObjectRole
    ) -> bool:
        """Whether ``target`` is reachable from ``source`` by >= 1 step of
        ``role``-neighbour edges (a transitive role's closure)."""
        frontier = [source]
        seen: Set[NodeId] = set()
        while frontier:
            current = frontier.pop()
            for neighbour in graph.neighbours(current, role, self.hierarchy):
                if neighbour == target:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    def _propagate_transitive(
        self, graph: _Graph, node: NodeId, concept: Forall
    ) -> bool:
        """The all+-rule: push ``all S.C`` through transitive subroles of S."""
        changed = False
        for sub_role, supers in self.hierarchy.items():
            if concept.role not in supers:
                continue
            if not self.kb.is_transitive(sub_role):
                continue
            carried = Forall(sub_role, concept.filler)
            for neighbour in graph.neighbours(node, sub_role, self.hierarchy):
                if carried not in graph.labels[neighbour]:
                    graph.labels[neighbour].add(carried)
                    changed = True
        return changed

    def _nominal_holders(self, graph: _Graph) -> Dict[OneOf, List[NodeId]]:
        holders: Dict[OneOf, List[NodeId]] = {}
        for node in graph.nodes():
            for concept in graph.labels[node]:
                if isinstance(concept, OneOf) and len(concept.individuals) == 1:
                    holders.setdefault(concept, []).append(node)
        return holders

    # ------------------------------------------------------------------
    # Clash detection
    # ------------------------------------------------------------------
    def _has_clash(self, graph: _Graph, node: NodeId) -> bool:
        label = graph.labels[node]
        for concept in label:
            if isinstance(concept, Bottom):
                return True
            if isinstance(concept, Not):
                if concept.operand in label:
                    return True
                if isinstance(concept.operand, OneOf):
                    for other in concept.operand.individuals:
                        if graph.roots.get(other) == node:
                            return True
            if isinstance(concept, AtMost):
                # Clash once more than n neighbours remain and none can be
                # merged (all provably pairwise distinct); until then the
                # <=-choice rule proposes merges.
                neighbours = graph.neighbours(node, concept.role, self.hierarchy)
                if len(neighbours) > concept.n and all(
                    graph.are_distinct(a, b)
                    for a, b in itertools.combinations(sorted(neighbours), 2)
                ):
                    return True
            if isinstance(concept, QualifiedAtMost):
                matching = {
                    y
                    for y in graph.neighbours(node, concept.role, self.hierarchy)
                    if concept.filler in graph.labels[y]
                }
                if len(matching) > concept.n and all(
                    graph.are_distinct(a, b)
                    for a, b in itertools.combinations(sorted(matching), 2)
                ):
                    return True
            if isinstance(concept, DataAtMost):
                neighbours = graph.data_neighbours(
                    node, concept.role, self.data_hierarchy
                )
                if len(neighbours) > concept.n and all(
                    frozenset({a, b}) in graph.data_distinct
                    for a, b in itertools.combinations(sorted(neighbours), 2)
                ):
                    return True
        return False

    @staticmethod
    def _has_n_pairwise_distinct(
        graph: _Graph, nodes: Set[NodeId], n: int
    ) -> bool:
        """Whether ``nodes`` contains ``n`` provably pairwise-distinct members.

        Exact maximum-clique on the distinctness graph is exponential; for
        the small neighbour sets the tableau produces a greedy clique is
        computed over every start node, which is exact for the cliques of
        size <= 3 that unqualified SHOIN restrictions generate in practice.
        """
        if n <= 0:
            return True
        if len(nodes) < n:
            return False
        ordered = sorted(nodes)
        for start in ordered:
            clique = [start]
            for candidate in ordered:
                if candidate in clique:
                    continue
                if all(graph.are_distinct(candidate, member) for member in clique):
                    clique.append(candidate)
                if len(clique) >= n:
                    return True
        return False

    @staticmethod
    def _max_pairwise_distinct_data(graph: _Graph, nodes: Set[NodeId]) -> int:
        ordered = sorted(nodes)
        best = 1 if ordered else 0
        for start in ordered:
            clique = [start]
            for candidate in ordered:
                if candidate in clique:
                    continue
                if all(
                    frozenset({candidate, member}) in graph.data_distinct
                    for member in clique
                ):
                    clique.append(candidate)
            best = max(best, len(clique))
        return best

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------
    def _blocked_nodes(self, graph: _Graph) -> Set[NodeId]:
        """Anywhere pairwise-blocked blockable nodes (and their descendants)."""
        blocked: Set[NodeId] = set()
        blockable = [
            n
            for n in graph.nodes()
            if not graph.is_root(n) and graph.parent.get(n) is not None
        ]
        order = graph.creation_order
        directly_blocked: Set[NodeId] = set()
        for node in blockable:
            parent = graph.parent[node]
            if parent is None or parent not in graph.labels:
                continue
            node_label = frozenset(graph.labels[node])
            parent_label = frozenset(graph.labels[parent])
            in_roles = graph.edge_roles_between(parent, node)
            for witness in blockable:
                if order[witness] >= order[node] or witness == node:
                    continue
                witness_parent = graph.parent[witness]
                if witness_parent is None or witness_parent not in graph.labels:
                    continue
                if (
                    frozenset(graph.labels[witness]) == node_label
                    and frozenset(graph.labels[witness_parent]) == parent_label
                    and graph.edge_roles_between(witness_parent, witness) == in_roles
                ):
                    directly_blocked.add(node)
                    break
        # Indirect blocking: descendants of blocked nodes.
        for node in blockable:
            current = node
            while current is not None:
                if current in directly_blocked:
                    blocked.add(node)
                    break
                current = graph.parent.get(current)
        return blocked

    # ------------------------------------------------------------------
    # Nondeterministic choices
    # ------------------------------------------------------------------
    def _find_choice(self, graph: _Graph):
        """The next choice point: a list of graph-mutating alternatives.

        Disjunctions are screened by Boolean constraint propagation:
        operands that clash immediately with the node label are dropped,
        and among all open disjunctions the one with the fewest open
        operands is branched first (fail-first).  A disjunction with no
        open operand returns an empty alternative list, failing the
        branch without further search.
        """
        blocked = self._blocked_nodes(graph)
        best_or: Optional[List] = None
        for node in graph.nodes():
            label = graph.labels[node]
            for concept in sorted(label, key=self._sort_key):
                if isinstance(concept, Or) and not any(
                    operand in label for operand in concept.operands
                ):
                    if not self.use_bcp:
                        return [
                            self._adder(node, operand)
                            for operand in concept.operands
                        ]
                    open_operands = [
                        operand
                        for operand in concept.operands
                        if not self._immediately_clashes(graph, node, operand)
                    ]
                    if not open_operands:
                        return []
                    if best_or is None or len(open_operands) < len(best_or):
                        best_or = [
                            self._adder(node, operand) for operand in open_operands
                        ]
                        if len(best_or) == 1:
                            return best_or
                # Nominal choice: {o1,...,ok} with k > 1, not yet resolved
                # by a singleton nominal already in the label.
                if isinstance(concept, OneOf) and len(concept.individuals) > 1:
                    resolved = any(
                        isinstance(other, OneOf)
                        and len(other.individuals) == 1
                        and other.individuals <= concept.individuals
                        for other in label
                    )
                    if not resolved:
                        return [
                            self._nominal_chooser(node, concept, individual)
                            for individual in sorted(concept.individuals)
                        ]
        if best_or is not None:
            return best_or
        for node in graph.nodes():
            label = graph.labels[node]
            # choose-rule: a qualified at-most needs every neighbour's
            # filler membership decided before counting is meaningful.
            for concept in sorted(label, key=self._sort_key):
                if isinstance(concept, QualifiedAtMost):
                    negated = negation_nnf(concept.filler)
                    for neighbour in sorted(
                        graph.neighbours(node, concept.role, self.hierarchy)
                    ):
                        neighbour_label = graph.labels[neighbour]
                        if (
                            concept.filler not in neighbour_label
                            and negated not in neighbour_label
                        ):
                            return [
                                self._adder(neighbour, concept.filler),
                                self._adder(neighbour, negated),
                            ]
            if node in blocked:
                continue
            # <=-rule: choose two non-distinct neighbours to merge.
            for concept in sorted(label, key=self._sort_key):
                if isinstance(concept, QualifiedAtMost):
                    matching = {
                        y
                        for y in graph.neighbours(
                            node, concept.role, self.hierarchy
                        )
                        if concept.filler in graph.labels[y]
                    }
                    if len(matching) > concept.n:
                        pairs = [
                            (a, b)
                            for a, b in itertools.combinations(sorted(matching), 2)
                            if not graph.are_distinct(a, b)
                        ]
                        if pairs:
                            return [self._merger(a, b, graph) for a, b in pairs]
                if isinstance(concept, AtMost):
                    neighbours = graph.neighbours(node, concept.role, self.hierarchy)
                    if len(neighbours) > concept.n:
                        pairs = [
                            (a, b)
                            for a, b in itertools.combinations(sorted(neighbours), 2)
                            if not graph.are_distinct(a, b)
                        ]
                        if pairs:
                            return [self._merger(a, b, graph) for a, b in pairs]
                if isinstance(concept, DataAtMost):
                    neighbours = graph.data_neighbours(
                        node, concept.role, self.data_hierarchy
                    )
                    if len(neighbours) > concept.n:
                        pairs = [
                            (a, b)
                            for a, b in itertools.combinations(sorted(neighbours), 2)
                            if frozenset({a, b}) not in graph.data_distinct
                        ]
                        if pairs:
                            return [self._data_merger(a, b) for a, b in pairs]
        return None

    def _sort_key(self, concept: Concept) -> str:
        """A cached deterministic ordering key for label iteration."""
        key = self._sort_keys.get(concept)
        if key is None:
            key = repr(concept)
            self._sort_keys[concept] = key
        return key

    @staticmethod
    def _immediately_clashes(graph: _Graph, node: NodeId, concept: Concept) -> bool:
        """Whether adding ``concept`` to the node label clashes on the spot.

        Sound screening only (NNF literals): ``Bottom``, an atom whose
        negation is present, or a negated atom whose atom is present.
        """
        label = graph.labels[node]
        if isinstance(concept, Bottom):
            return True
        if isinstance(concept, AtomicConcept):
            return Not(concept) in label
        if isinstance(concept, Not) and isinstance(concept.operand, AtomicConcept):
            return concept.operand in label
        return False

    @staticmethod
    def _adder(node: NodeId, concept: Concept):
        def apply(graph: _Graph) -> bool:
            if node not in graph.labels:
                return False
            graph.labels[node].add(concept)
            return True

        return apply

    @staticmethod
    def _nominal_chooser(node: NodeId, concept: OneOf, individual: Individual):
        def apply(graph: _Graph) -> bool:
            if node not in graph.labels:
                return False
            # The multi-nominal stays in the label (labels are monotone;
            # removing it would make the or-rule refire forever).
            graph.labels[node].add(OneOf(frozenset({individual})))
            existing = graph.roots.get(individual)
            if existing is not None:
                if existing == node:
                    return True
                return graph.merge(node, existing)
            graph.roots[individual] = node
            graph.root_nodes.add(node)
            return True

        return apply

    def _merger(self, left: NodeId, right: NodeId, graph: _Graph):
        order = graph.creation_order
        # Merge the younger (and preferably blockable) node into the older.
        survivor, victim = (left, right) if order[left] <= order[right] else (right, left)
        if graph.is_root(victim) and not graph.is_root(survivor):
            survivor, victim = victim, survivor

        def apply(branch: _Graph) -> bool:
            if victim not in branch.labels or survivor not in branch.labels:
                return False
            return branch.merge(victim, survivor)

        return apply

    @staticmethod
    def _data_merger(left: NodeId, right: NodeId):
        survivor, victim = (left, right) if left <= right else (right, left)

        def apply(branch: _Graph) -> bool:
            if (
                victim not in branch.data_labels
                or survivor not in branch.data_labels
            ):
                return False
            return branch.merge_data(victim, survivor)

        return apply

    # ------------------------------------------------------------------
    # Final (datatype) checks
    # ------------------------------------------------------------------
    def _final_checks(self, graph: _Graph) -> bool:
        """Check the concrete domain: every data node needs a value, and
        pairwise-distinct nodes need distinct values."""
        assigned: Dict[NodeId, object] = {}
        for node in sorted(graph.data_labels):
            ranges = list(graph.data_labels[node])
            taboo = {
                assigned[other]
                for other in assigned
                if frozenset({node, other}) in graph.data_distinct
            }
            witnesses = find_witnesses(ranges, count=len(taboo) + 1)
            if witnesses is None:
                return False
            chosen = next((w for w in witnesses if w not in taboo), None)
            if chosen is None:
                return False
            assigned[node] = chosen
        self._data_assignment = assigned
        self._complete_graph = graph
        return True


def _transitive_closure(pairs: Set[Tuple[NodeId, NodeId]]) -> Set[Tuple[NodeId, NodeId]]:
    closed = set(pairs)
    changed = True
    while changed:
        changed = False
        for (x, y) in list(closed):
            for (y2, z) in list(closed):
                if y2 == y and (x, z) not in closed:
                    closed.add((x, z))
                    changed = True
    return closed


def _role_expression_pairs(
    role_ext: Dict[AtomicRole, Set[Tuple[NodeId, NodeId]]], role: ObjectRole
) -> Set[Tuple[NodeId, NodeId]]:
    base = role_ext.get(role.named, set())
    if role.is_inverse:
        return {(y, x) for (x, y) in base}
    return set(base)


@dataclass(frozen=True)
class _ExactValue(DataRange):
    """A data range holding exactly one literal (for asserted data edges)."""

    datatype: str
    lexical: str

    def contains(self, value) -> bool:
        return value.datatype == self.datatype and value.lexical == self.lexical

    def mentioned_values(self):
        from .individuals import DataValue

        return (DataValue(self.datatype, self.lexical),)

    def __repr__(self) -> str:
        return f"={self.lexical}"
