"""Negation normal form for SHOIN(D) concepts.

Pushes negation inward until it sits only in front of atomic concepts,
nominals, and data ranges, using the classical dualities (which the paper's
Proposition 4 shows also hold four-valuedly):

* De Morgan for ``and`` / ``or``;
* ``not some R.C = all R.not C`` and dually;
* ``not (>= n R) = <= (n-1) R`` and ``not (<= n R) = >= (n+1) R``;
* datatype restrictions via range complement.

The tableau operates exclusively on NNF concepts.
"""

from __future__ import annotations

from .concepts import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)


def nnf(concept: Concept) -> Concept:
    """The negation normal form of a concept."""
    if isinstance(concept, (AtomicConcept, Top, Bottom, OneOf)):
        return concept
    if isinstance(concept, Not):
        return _negate(concept.operand)
    if isinstance(concept, And):
        return And.of(*(nnf(c) for c in concept.operands))
    if isinstance(concept, Or):
        return Or.of(*(nnf(c) for c in concept.operands))
    if isinstance(concept, Exists):
        return Exists(concept.role, nnf(concept.filler))
    if isinstance(concept, Forall):
        return Forall(concept.role, nnf(concept.filler))
    if isinstance(concept, (AtLeast, AtMost, DataAtLeast, DataAtMost)):
        return concept
    if isinstance(concept, QualifiedAtLeast):
        return QualifiedAtLeast(concept.n, concept.role, nnf(concept.filler))
    if isinstance(concept, QualifiedAtMost):
        return QualifiedAtMost(concept.n, concept.role, nnf(concept.filler))
    if isinstance(concept, (DataExists, DataForall)):
        return concept
    raise TypeError(f"unknown concept kind: {concept!r}")


def _negate(concept: Concept) -> Concept:
    """NNF of the negation of a concept."""
    if isinstance(concept, AtomicConcept):
        return Not(concept)
    if isinstance(concept, Top):
        return BOTTOM
    if isinstance(concept, Bottom):
        return TOP
    if isinstance(concept, Not):
        return nnf(concept.operand)
    if isinstance(concept, And):
        return Or.of(*(_negate(c) for c in concept.operands))
    if isinstance(concept, Or):
        return And.of(*(_negate(c) for c in concept.operands))
    if isinstance(concept, Exists):
        return Forall(concept.role, _negate(concept.filler))
    if isinstance(concept, Forall):
        return Exists(concept.role, _negate(concept.filler))
    if isinstance(concept, AtLeast):
        if concept.n == 0:
            return BOTTOM
        return AtMost(concept.n - 1, concept.role)
    if isinstance(concept, AtMost):
        return AtLeast(concept.n + 1, concept.role)
    if isinstance(concept, QualifiedAtLeast):
        if concept.n == 0:
            return BOTTOM
        return QualifiedAtMost(concept.n - 1, concept.role, nnf(concept.filler))
    if isinstance(concept, QualifiedAtMost):
        return QualifiedAtLeast(concept.n + 1, concept.role, nnf(concept.filler))
    if isinstance(concept, OneOf):
        return Not(concept)
    if isinstance(concept, DataExists):
        return DataForall(concept.role, concept.range.negate())
    if isinstance(concept, DataForall):
        return DataExists(concept.role, concept.range.negate())
    if isinstance(concept, DataAtLeast):
        if concept.n == 0:
            return BOTTOM
        return DataAtMost(concept.n - 1, concept.role)
    if isinstance(concept, DataAtMost):
        return DataAtLeast(concept.n + 1, concept.role)
    raise TypeError(f"unknown concept kind: {concept!r}")


def negation_nnf(concept: Concept) -> Concept:
    """Shorthand for ``nnf(not C)``."""
    return _negate(concept)


def is_nnf(concept: Concept) -> bool:
    """Whether negation occurs only in front of atoms and nominals."""
    if isinstance(concept, Not):
        return isinstance(concept.operand, (AtomicConcept, OneOf))
    if isinstance(concept, (And, Or)):
        return all(is_nnf(c) for c in concept.operands)
    if isinstance(concept, (Exists, Forall, QualifiedAtLeast, QualifiedAtMost)):
        return is_nnf(concept.filler)
    return True
