"""Object and datatype roles of SHOIN(D) (paper Table 1).

Object roles support inversion; ``inverse_of`` normalises so that a double
inverse collapses back to the named role.  Datatype roles relate abstract
individuals to concrete values and have no inverses (as in OWL DL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


class ObjectRole:
    """Base class of object-role expressions (named roles and inverses)."""

    def inverse(self) -> "ObjectRole":
        """The inverse role expression, normalised."""
        raise NotImplementedError

    @property
    def named(self) -> "AtomicRole":
        """The underlying named role of this expression."""
        raise NotImplementedError

    @property
    def is_inverse(self) -> bool:
        """Whether this expression is an inverse of a named role."""
        raise NotImplementedError


@dataclass(frozen=True, order=True)
class AtomicRole(ObjectRole):
    """A named (atomic) object role ``R``."""

    name: str

    def inverse(self) -> "InverseRole":
        return InverseRole(self)

    @property
    def named(self) -> "AtomicRole":
        return self

    @property
    def is_inverse(self) -> bool:
        return False

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class InverseRole(ObjectRole):
    """The inverse ``R-`` of a named object role."""

    role: AtomicRole

    def inverse(self) -> AtomicRole:
        return self.role

    @property
    def named(self) -> AtomicRole:
        return self.role

    @property
    def is_inverse(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.role.name}-"


@dataclass(frozen=True, order=True)
class DatatypeRole:
    """A named datatype role ``U`` from individuals to data values."""

    name: str

    def __repr__(self) -> str:
        return self.name


Role = Union[ObjectRole, DatatypeRole]


def is_object_role(role: Role) -> bool:
    """Whether the expression is an object role (named or inverse)."""
    return isinstance(role, ObjectRole)
