"""Resource governance: budgets, meters, verdicts, and escalation.

The tableau for SHOIN(D) is worst-case non-elementary, so a production
service must be able to *bound* every query and degrade gracefully when
the bound is hit — the same design stance the paper takes towards
inconsistency (answer usefully instead of collapsing).  This module is
the vocabulary for that:

* :class:`Budget` — an immutable resource envelope: wall-clock deadline,
  node / branch / trail caps, and an optional cooperative
  :class:`CancelToken`;
* :class:`BudgetMeter` — the running state of one budgeted service call,
  ticked by the tableau at rule-application and choice-point boundaries
  (amortised, never per-fact) and raising
  :class:`~repro.dl.errors.BudgetExceeded` when the envelope is blown;
* :class:`Verdict` — a three-way answer (``TRUE`` / ``FALSE`` /
  ``UNKNOWN``) carrying the :class:`~repro.dl.errors.DegradationReason`
  when the search gave up.  ``UNKNOWN`` is *sound but incomplete*
  degradation: a budgeted service never flips a decidable answer, it
  only withholds one (see THEORY.md §10);
* :func:`retry_with_escalation` — re-run an UNKNOWN probe under
  geometrically larger budgets up to a ceiling;
* :class:`DegradationRecord` — the skip-and-record entry baselines
  append instead of aborting a whole run.

Clock injection (``Budget(clock=...)``) exists for the fault-injection
harness (:mod:`repro.harness.chaos`), which replays deadline expiry at
deterministic, seeded tableau steps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, ClassVar, Optional

from .errors import BudgetExceeded, DegradationReason

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stats import ReasonerStats

#: How many meter ticks pass between wall-clock reads by default.  Rule
#: application is orders of magnitude cheaper than a clock syscall, so
#: the deadline check is amortised; the first tick of every metered
#: scope always reads the clock, so an already-expired budget aborts a
#: fresh search immediately.
DEFAULT_CHECK_INTERVAL = 16


class CancelToken:
    """A cooperative cancellation flag shared between caller and search.

    The caller keeps a reference and calls :meth:`cancel` (e.g. from a
    signal handler or another thread); the tableau polls :meth:`is_set`
    through its :class:`BudgetMeter` at choice-point boundaries and
    aborts with ``DegradationReason.CANCELLED``.  Setting the flag is
    idempotent and cannot be undone — create a new token per request.

    The flag is backed by a ``threading.Event`` so a cancel issued from
    another thread is observed by a running search without relying on
    interpreter implementation details.  For *cross-process* use (a
    pool supervisor cancelling a probe running in a worker process),
    pass a ``multiprocessing.Event`` — or any object with ``set()`` /
    ``is_set()`` — as ``event``; both sides then share the kernel-level
    flag instead of a per-process boolean.
    """

    __slots__ = ("_event",)

    def __init__(self, event=None) -> None:
        self._event = event if event is not None else threading.Event()

    def cancel(self) -> None:
        """Request cancellation of every search metered on this token."""
        self._event.set()

    def is_set(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


@dataclass(frozen=True)
class Budget:
    """An immutable resource envelope for one reasoning service call.

    All limits are optional (``None`` = unlimited):

    * ``deadline`` — wall-clock seconds the whole call may take;
    * ``max_nodes`` — completion-graph size cap per tableau run
      (tightens, never loosens, the tableau's own cap);
    * ``max_branches`` — branches explored, cumulative across every
      tableau run of the call;
    * ``max_trail`` — trail entries recorded, cumulative across runs;
    * ``cancel`` — a :class:`CancelToken` polled during search;
    * ``clock`` — the monotonic time source (injectable for
      deterministic tests and the chaos harness);
    * ``check_interval`` — ticks between wall-clock reads.

    Budgets are reusable and thread-safe (frozen); each service call
    derives its own mutable :class:`BudgetMeter` via :meth:`start`.
    """

    deadline: Optional[float] = None
    max_nodes: Optional[int] = None
    max_branches: Optional[int] = None
    max_trail: Optional[int] = None
    cancel: Optional[CancelToken] = None
    clock: Callable[[], float] = time.monotonic
    check_interval: int = DEFAULT_CHECK_INTERVAL

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline!r}")
        for name in ("max_nodes", "max_branches", "max_trail"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")
        if self.check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {self.check_interval!r}"
            )

    def start(self, stats: "Optional[ReasonerStats]" = None) -> "BudgetMeter":
        """Begin a metered scope: fix the absolute deadline, zero counters."""
        return BudgetMeter(self, stats=stats)

    def scaled(self, factor: float) -> "Budget":
        """A geometrically larger copy (used by :func:`retry_with_escalation`).

        Every finite limit is multiplied by ``factor``; unlimited axes
        stay unlimited and the cancel token / clock carry over unchanged.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor!r}")

        def scale_int(value: Optional[int]) -> Optional[int]:
            return None if value is None else max(1, int(value * factor))

        return replace(
            self,
            deadline=None if self.deadline is None else self.deadline * factor,
            max_nodes=scale_int(self.max_nodes),
            max_branches=scale_int(self.max_branches),
            max_trail=scale_int(self.max_trail),
        )


class BudgetMeter:
    """The running state of one budgeted service call.

    Created by :meth:`Budget.start`; threaded through every tableau run
    the call issues, so cumulative limits (deadline, branches, trail)
    span the whole service call rather than a single run.  All checks
    raise :class:`~repro.dl.errors.BudgetExceeded` with the matching
    :class:`~repro.dl.errors.DegradationReason`; once a meter has
    expired it keeps raising immediately, so follow-up probes on the
    same scope abort at their first tick.
    """

    __slots__ = (
        "budget",
        "stats",
        "deadline_at",
        "branches",
        "trail",
        "_ticks",
        "_expired",
    )

    def __init__(self, budget: Budget, stats: "Optional[ReasonerStats]" = None):
        self.budget = budget
        self.stats = stats
        self.deadline_at = (
            None
            if budget.deadline is None
            else budget.clock() + budget.deadline
        )
        self.branches = 0
        self.trail = 0
        self._ticks = 0
        self._expired: Optional[DegradationReason] = None

    @property
    def max_nodes(self) -> Optional[int]:
        """The per-run node cap of the underlying budget (``None`` = no cap)."""
        return self.budget.max_nodes

    def _abort(self, reason: DegradationReason, message: str) -> None:
        self._expired = reason
        raise BudgetExceeded(message, reason)

    def tick(self) -> None:
        """One amortised budget check (called at search loop boundaries).

        The cancel token is polled on every tick (a flag read); the
        wall clock only every ``check_interval`` ticks — but always on
        the first, so an expired deadline stops a fresh run immediately.
        """
        if self._expired is not None:
            raise BudgetExceeded(
                f"budget already exhausted ({self._expired.value})",
                self._expired,
            )
        budget = self.budget
        if budget.cancel is not None and budget.cancel.is_set():
            self._abort(DegradationReason.CANCELLED, "search cancelled")
        if self.deadline_at is not None:
            if self._ticks % budget.check_interval == 0:
                if self.stats is not None:
                    self.stats.deadline_checks += 1
                if budget.clock() > self.deadline_at:
                    self._abort(
                        DegradationReason.DEADLINE,
                        f"deadline of {budget.deadline}s exceeded",
                    )
            self._ticks += 1

    def note_branch(self) -> None:
        """Count one explored branch against the cumulative branch cap."""
        self.tick()
        self.branches += 1
        limit = self.budget.max_branches
        if limit is not None and self.branches > limit:
            self._abort(
                DegradationReason.BRANCHES,
                f"budget exceeded {limit} branches",
            )

    def note_trail(self, entries: int) -> None:
        """Count newly recorded trail entries against the trail cap."""
        self.trail += entries
        limit = self.budget.max_trail
        if limit is not None and self.trail > limit:
            self._abort(
                DegradationReason.TRAIL,
                f"budget exceeded {limit} trail entries",
            )


@dataclass(frozen=True)
class Verdict:
    """A three-way reasoning answer: ``TRUE``, ``FALSE``, or ``UNKNOWN``.

    Decided verdicts carry ``value`` ``True`` / ``False``; an UNKNOWN
    verdict carries ``value=None`` plus the
    :class:`~repro.dl.errors.DegradationReason` that stopped the search
    and a human-readable message.  UNKNOWN is *degradation*, not a truth
    value: a budgeted service either returns the same answer the
    unbudgeted one would, or UNKNOWN — never the opposite answer (see
    THEORY.md §10).

    Truth-testing an UNKNOWN verdict with ``bool(...)`` raises
    ``TypeError`` on purpose: silently treating "don't know" as "no" is
    exactly the bug this type exists to prevent.  Branch on
    :meth:`is_true` / :meth:`is_false` / :meth:`is_unknown` instead.
    """

    value: Optional[bool]
    reason: Optional[DegradationReason] = None
    message: str = ""

    #: The two decided singletons, assigned right after the class body.
    TRUE: ClassVar["Verdict"]
    FALSE: ClassVar["Verdict"]

    def __post_init__(self) -> None:
        if self.value is None and self.reason is None:
            raise ValueError("an UNKNOWN verdict needs a DegradationReason")
        if self.value is not None and self.reason is not None:
            raise ValueError("a decided verdict cannot carry a reason")

    @classmethod
    def of(cls, value: bool) -> "Verdict":
        """The decided verdict for a boolean answer."""
        return cls.TRUE if value else cls.FALSE

    @classmethod
    def unknown(
        cls, reason: DegradationReason, message: str = ""
    ) -> "Verdict":
        """An UNKNOWN verdict recording why the search gave up."""
        return cls(value=None, reason=reason, message=message)

    def is_true(self) -> bool:
        """Whether this is the decided TRUE verdict."""
        return self.value is True

    def is_false(self) -> bool:
        """Whether this is the decided FALSE verdict."""
        return self.value is False

    def is_unknown(self) -> bool:
        """Whether the search degraded instead of deciding."""
        return self.value is None

    def negate(self) -> "Verdict":
        """The verdict of the negated question (UNKNOWN stays UNKNOWN)."""
        if self.value is None:
            return self
        return Verdict.of(not self.value)

    def __bool__(self) -> bool:
        if self.value is None:
            raise TypeError(
                "cannot truth-test an UNKNOWN verdict "
                f"(reason: {self.reason.value}); "
                "branch on is_true()/is_false()/is_unknown()"
            )
        return self.value

    def __str__(self) -> str:
        if self.value is None:
            return f"UNKNOWN({self.reason.value})"
        return "TRUE" if self.value else "FALSE"


Verdict.TRUE = Verdict(value=True)
Verdict.FALSE = Verdict(value=False)


@dataclass(frozen=True)
class DegradationRecord:
    """One skipped step of a degraded batch service.

    Baselines and bounded classification append these instead of
    aborting the whole run: ``context`` names the skipped unit (an
    axiom, a stratum, a concept pair), ``reason`` says which resource
    ran out.
    """

    context: str
    reason: DegradationReason
    message: str = ""

    def __str__(self) -> str:
        return f"{self.context}: {self.reason.value}"


def retry_with_escalation(
    probe: Callable[[Optional[Budget]], Verdict],
    budget: Budget,
    factor: float = 4.0,
    attempts: int = 3,
    ceiling: Optional[Budget] = None,
    stats: "Optional[ReasonerStats]" = None,
) -> Verdict:
    """Re-run an UNKNOWN probe under geometrically larger budgets.

    ``probe`` is called with the current :class:`Budget` and must return
    a :class:`Verdict`; after an UNKNOWN answer the budget is scaled by
    ``factor`` and the probe retried, up to ``attempts`` total calls.
    ``ceiling`` (when given) clamps every escalated limit; escalation
    stops early once the ceiling is reached without deciding.  Decided
    answers return immediately — escalation can turn UNKNOWN into a
    decision but never perturb one (each attempt is an independent,
    sound probe).  Cancellation is not escalated: an UNKNOWN with reason
    ``CANCELLED`` returns as-is, since a larger budget cannot override
    an explicit cancel request.

    Every retry increments the ``escalations`` stats counter when a
    :class:`~repro.dl.stats.ReasonerStats` is supplied.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts!r}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor!r}")
    current = budget
    verdict = probe(current)
    for _ in range(attempts - 1):
        if not verdict.is_unknown():
            return verdict
        if verdict.reason is DegradationReason.CANCELLED:
            return verdict
        escalated = current.scaled(factor)
        if ceiling is not None:
            escalated = _clamp(escalated, ceiling)
            if escalated == current:
                return verdict
        current = escalated
        if stats is not None:
            stats.escalations += 1
        verdict = probe(current)
    return verdict


def _clamp(budget: Budget, ceiling: Budget) -> Budget:
    """Limit every axis of ``budget`` to the corresponding ceiling axis."""

    def tighter(value, cap):
        if cap is None:
            return value
        if value is None:
            return cap
        return min(value, cap)

    return replace(
        budget,
        deadline=tighter(budget.deadline, ceiling.deadline),
        max_nodes=tighter(budget.max_nodes, ceiling.max_nodes),
        max_branches=tighter(budget.max_branches, ceiling.max_branches),
        max_trail=tighter(budget.max_trail, ceiling.max_trail),
    )
