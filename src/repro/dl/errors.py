"""Exception types shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library errors."""


class ParseError(ReproError):
    """Raised by the concept/KB parser on malformed input."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ReasonerLimitExceeded(ReproError):
    """Raised when the tableau exceeds its configured node or branch budget.

    The tableau for SHOIN is worst-case non-elementary in practice; the
    budget turns a runaway search into a diagnosable error instead of an
    unbounded loop.
    """


class UnsupportedFeature(ReproError):
    """Raised when an input uses a feature outside the implemented fragment."""


class UnsupportedAxiomError(UnsupportedFeature):
    """Raised when an entailment service is asked about an axiom kind it
    does not (yet) decide.

    Carries the offending axiom so callers can report or skip it; being a
    :class:`UnsupportedFeature` subtype, pre-existing ``except
    UnsupportedFeature`` handlers keep working.
    """

    def __init__(self, axiom: object, service: str = "entails"):
        super().__init__(
            f"{service} does not support {type(axiom).__name__} axioms: {axiom!r}"
        )
        self.axiom = axiom
        self.service = service
