"""Exception types shared across the library."""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class of all library errors."""


class ParseError(ReproError):
    """Raised by the concept/KB parser on malformed input."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ReasonerLimitExceeded(ReproError):
    """Raised when the tableau exceeds its configured node or branch budget.

    The tableau for SHOIN is worst-case non-elementary in practice; the
    budget turns a runaway search into a diagnosable error instead of an
    unbounded loop.
    """


class DegradationReason(enum.Enum):
    """Why a reasoning service gave up before reaching a verdict.

    Attached to every :class:`BudgetExceeded` and surfaced on the
    structured ``UNKNOWN`` verdicts of the budgeted service APIs
    (:mod:`repro.dl.budget`), so callers can distinguish a wall-clock
    timeout from a memory-style cap from a cooperative cancellation.
    """

    #: The wall-clock deadline of the active :class:`~repro.dl.budget.Budget`
    #: passed mid-search.
    DEADLINE = "deadline"
    #: A completion graph grew past the node cap.
    NODES = "nodes"
    #: The search explored more branches than the branch cap allows.
    BRANCHES = "branches"
    #: The trail of the in-place search engine grew past the trail cap.
    TRAIL = "trail"
    #: A cooperative :class:`~repro.dl.budget.CancelToken` was triggered.
    CANCELLED = "cancelled"
    #: The supervised worker process executing the request died (or was
    #: killed for wedging) before it could answer; the service layer
    #: (:mod:`repro.serve`) degrades the in-flight request to UNKNOWN
    #: instead of hanging the client.
    WORKER_CRASH = "worker_crash"
    #: An unexpected error was contained by a degrading service (the
    #: fault-injection harness exercises this path; real searches abort
    #: with one of the specific reasons above).
    ERROR = "error"


class BudgetExceeded(ReasonerLimitExceeded):
    """A search was aborted because a :class:`~repro.dl.budget.Budget` ran out.

    Subclasses :class:`ReasonerLimitExceeded`, so pre-existing handlers
    (and tests) for cap overruns keep working; new code can catch this
    type and read :attr:`reason` to learn *which* resource was exhausted.
    """

    def __init__(self, message: str, reason: "DegradationReason"):
        super().__init__(message)
        #: The exhausted resource, as a :class:`DegradationReason`.
        self.reason = reason


class CacheConflictError(ReproError):
    """A store tried to flip a live cached verdict to its negation.

    Decided verdicts are deterministic functions of (KB version, probe
    key), so two engines — or two runs of the same engine — must agree;
    a disagreement means one of them is unsound, and masking it by
    overwriting would let the wrong answer win arbitrarily.  Carries the
    offending key and both verdicts for the bug report.
    """

    def __init__(self, key: object, cached: bool, attempted: bool):
        super().__init__(
            f"cache conflict: key {key!r} is cached as {cached} but an "
            f"engine tried to store {attempted}"
        )
        self.key = key
        self.cached = cached
        self.attempted = attempted


class UnsupportedFeature(ReproError):
    """Raised when an input uses a feature outside the implemented fragment."""


class UnsupportedAxiomError(UnsupportedFeature):
    """Raised when an entailment service is asked about an axiom kind it
    does not (yet) decide.

    Carries the offending axiom so callers can report or skip it; being a
    :class:`UnsupportedFeature` subtype, pre-existing ``except
    UnsupportedFeature`` handlers keep working.
    """

    def __init__(self, axiom: object, service: str = "entails"):
        super().__init__(
            f"{service} does not support {type(axiom).__name__} axioms: {axiom!r}"
        )
        self.axiom = axiom
        self.service = service
