"""High-level classical reasoning services over the tableau.

Implements the standard reduction of reasoning tasks to KB satisfiability
(the paper cites Horrocks & Patel-Schneider for the same reduction from
OWL DL entailment):

* consistency — direct tableau run;
* concept satisfiability — fresh probe individual;
* subsumption ``C [= D`` — unsatisfiability of ``C and not D``;
* instance checking ``a : C`` — unsatisfiability of ``KB + {a : not C}``;
* role-assertion entailment — via nominals: ``R(a, b)`` is entailed iff
  ``KB + {a : all R.not {b}}`` is unsatisfiable;
* classification — pairwise subsumption over the atomic signature.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .axioms import (
    Axiom,
    ConceptAssertion,
    ConceptEquivalence,
    ConceptInclusion,
    DataAssertion,
    DifferentIndividuals,
    NegativeRoleAssertion,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
)
from .concepts import (
    And,
    AtomicConcept,
    Concept,
    Exists,
    Forall,
    Not,
    OneOf,
)
from .individuals import Individual
from .kb import KnowledgeBase
from .tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES, Tableau


class Reasoner:
    """Classical SHOIN(D) reasoner for a fixed knowledge base.

    All services are answered by refutation through one shared
    :class:`~repro.dl.tableau.Tableau` instance; results of consistency and
    subsumption checks are memoised because classification re-asks them.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
    ):
        self.kb = kb
        self._tableau = Tableau(kb, max_nodes=max_nodes, max_branches=max_branches)
        self._consistent: Optional[bool] = None
        self._subsumption_cache: Dict[Tuple[Concept, Concept], bool] = {}

    # ------------------------------------------------------------------
    # Core services
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """Whether the KB has a classical model."""
        if self._consistent is None:
            self._consistent = self._tableau.is_satisfiable()
        return self._consistent

    def is_satisfiable(self, concept: Concept) -> bool:
        """Whether ``concept`` has an instance in some model of the KB."""
        return self._tableau.concept_satisfiable(concept)

    def model(self):
        """A verified finite model of the KB, or ``None``.

        ``None`` means either the KB is inconsistent or its canonical
        model is not finitely representable from the completion graph
        (see :meth:`~repro.dl.tableau.Tableau.extract_model`).
        """
        if not self.is_consistent():
            return None
        # Re-run without probe assertions so the graph matches the KB.
        self._tableau.is_satisfiable()
        return self._tableau.extract_model()

    def subsumes(self, sup: Concept, sub: Concept) -> bool:
        """Whether ``sub [= sup`` holds in every model of the KB."""
        key = (sub, sup)
        if key not in self._subsumption_cache:
            self._subsumption_cache[key] = not self.is_satisfiable(
                And.of(sub, Not(sup))
            )
        return self._subsumption_cache[key]

    def is_instance(self, individual: Individual, concept: Concept) -> bool:
        """Whether ``a : C`` holds in every model of the KB."""
        probe = ConceptAssertion(individual, Not(concept))
        return not self._tableau.is_satisfiable([probe])

    def entails(self, axiom: Axiom) -> bool:
        """Whether the KB entails the given axiom."""
        if isinstance(axiom, ConceptInclusion):
            return self.subsumes(axiom.sup, axiom.sub)
        if isinstance(axiom, ConceptAssertion):
            return self.is_instance(axiom.individual, axiom.concept)
        if isinstance(axiom, RoleAssertion):
            # R(a, b) is entailed iff adding "a sees no b through R" clashes.
            probe = ConceptAssertion(
                axiom.source,
                Forall(axiom.role, Not(OneOf(frozenset({axiom.target})))),
            )
            return not self._tableau.is_satisfiable([probe])
        if isinstance(axiom, NegativeRoleAssertion):
            # not R(a, b) is entailed iff asserting R(a, b) is impossible.
            probe = RoleAssertion(axiom.role, axiom.source, axiom.target)
            return not self._tableau.is_satisfiable([probe])
        if isinstance(axiom, SameIndividual):
            pair = OneOf(frozenset({axiom.right}))
            return self.is_instance(axiom.left, pair)
        if isinstance(axiom, ConceptEquivalence):
            return self.entails(
                ConceptInclusion(axiom.left, axiom.right)
            ) and self.entails(ConceptInclusion(axiom.right, axiom.left))
        if isinstance(axiom, DifferentIndividuals):
            # a != b is entailed iff identifying them is impossible.
            probe = SameIndividual(axiom.left, axiom.right)
            return not self._tableau.is_satisfiable([probe])
        if isinstance(axiom, DataAssertion):
            # U(a, v) is entailed iff "all of a's U-values differ from v"
            # is impossible.
            from .datatypes import DataOneOf
            from .concepts import DataForall

            excluded = DataOneOf(frozenset({axiom.value})).negate()
            probe = ConceptAssertion(axiom.source, DataForall(axiom.role, excluded))
            return not self._tableau.is_satisfiable([probe])
        if isinstance(axiom, RoleInclusion):
            # R [= S is entailed iff two fresh individuals connected by R
            # but provably not by S are impossible.
            source = Individual("__sub_probe_a__")
            target = Individual("__sub_probe_b__")
            nominal = OneOf(frozenset({target}))
            probes = [
                ConceptAssertion(source, Exists(axiom.sub, nominal)),
                ConceptAssertion(source, Forall(axiom.sup, Not(nominal))),
            ]
            return not self._tableau.is_satisfiable(probes)
        raise NotImplementedError(f"entailment of {type(axiom).__name__}")

    def entails_all(self, axioms: Iterable[Axiom]) -> bool:
        """Whether the KB entails every axiom (OWL DL ontology entailment)."""
        return all(self.entails(axiom) for axiom in axioms)

    # ------------------------------------------------------------------
    # Derived services
    # ------------------------------------------------------------------
    def equivalent(self, left: Concept, right: Concept) -> bool:
        """Whether two concepts are equivalent under the KB."""
        return self.subsumes(left, right) and self.subsumes(right, left)

    def instances_of(self, concept: Concept) -> FrozenSet[Individual]:
        """All named individuals provably in ``concept``."""
        return frozenset(
            individual
            for individual in self.kb.individuals_in_signature()
            if self.is_instance(individual, concept)
        )

    def types_of(self, individual: Individual) -> FrozenSet[AtomicConcept]:
        """All atomic concepts the individual provably belongs to."""
        return frozenset(
            concept
            for concept in self.kb.concepts_in_signature()
            if self.is_instance(individual, concept)
        )

    def classify(self) -> Dict[AtomicConcept, FrozenSet[AtomicConcept]]:
        """The full atomic subsumption hierarchy.

        Maps each atomic concept to the set of its (not necessarily
        strict) atomic subsumers, computed by pairwise subsumption tests.
        """
        atoms = sorted(self.kb.concepts_in_signature(), key=lambda a: a.name)
        hierarchy: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
        for sub in atoms:
            hierarchy[sub] = frozenset(
                sup for sup in atoms if self.subsumes(sup, sub)
            )
        return hierarchy

    def unsatisfiable_concepts(self) -> FrozenSet[AtomicConcept]:
        """Atomic concepts with no possible instances under the KB."""
        return frozenset(
            concept
            for concept in self.kb.concepts_in_signature()
            if not self.is_satisfiable(concept)
        )
