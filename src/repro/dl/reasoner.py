"""High-level classical reasoning services over the tableau.

Implements the standard reduction of reasoning tasks to KB satisfiability
(the paper cites Horrocks & Patel-Schneider for the same reduction from
OWL DL entailment):

* consistency — direct tableau run;
* concept satisfiability — fresh probe individual;
* subsumption ``C [= D`` — unsatisfiability of ``C and not D``;
* instance checking ``a : C`` — unsatisfiability of ``KB + {a : not C}``;
* role-assertion entailment — via nominals: ``R(a, b)`` is entailed iff
  ``KB + {a : all R.not {b}}`` is unsatisfiable;
* classification — told-subsumer seeding plus enhanced top-down /
  bottom-up traversal insertion into a growing taxonomy DAG.

Every service funnels through one cached satisfiability entry point
(:meth:`Reasoner._satisfiable_with`): probes are canonicalised to NNF and
looked up in a :class:`~repro.dl.cache.QueryCache` before the tableau
runs.  The cache is invalidated — and the tableau rebuilt — whenever the
KB's ``version`` counter moves, so mutating the KB after queries never
serves stale answers.  :class:`~repro.dl.stats.ReasonerStats` counters
record how much work each service actually did.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .axioms import (
    ABoxAxiom,
    Axiom,
    ConceptAssertion,
    ConceptEquivalence,
    ConceptInclusion,
    DataAssertion,
    DifferentIndividuals,
    NegativeRoleAssertion,
    RoleAssertion,
    RoleInclusion,
    SameIndividual,
)
from .budget import Budget, BudgetMeter, Verdict, retry_with_escalation
from .cache import CONSISTENCY_KEY, QueryCache, probe_set_key
from .saturation import SaturationEngine
from .errors import (
    BudgetExceeded,
    DegradationReason,
    ParseError,
    UnsupportedAxiomError,
    UnsupportedFeature,
)
from .concepts import (
    And,
    AtomicConcept,
    Concept,
    Exists,
    Forall,
    Not,
    OneOf,
    nominals,
)
from .incremental import affected_atoms, axiom_signature
from .individuals import Individual
from .kb import KnowledgeBase
from .stats import ReasonerStats
from .tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES, Tableau
from ..obs.spans import add_event, set_gauge, span as obs_span

#: The fresh individual used for concept-satisfiability probes.  Fixing
#: the name keeps the cache key of ``is_satisfiable(C)`` canonical.
_PROBE = Individual("__probe__")


class Reasoner:
    """Classical SHOIN(D) reasoner for a fixed knowledge base.

    All services are answered by refutation through one shared
    :class:`~repro.dl.tableau.Tableau` instance.  Verdicts are memoised in
    a :class:`~repro.dl.cache.QueryCache` keyed on NNF-canonical probe
    sets; the cache may be passed in to share answers between reasoner
    views of the *same* KB (never of different KBs — invalidation is
    per-KB-version).  ``use_cache=False`` disables memoisation entirely,
    for differential tests and ablation benchmarks.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        cache: Optional[QueryCache] = None,
        use_cache: bool = True,
        stats: Optional[ReasonerStats] = None,
        search: str = "trail",
        cache_maxsize: Optional[int] = 4096,
        budget: Optional[Budget] = None,
        engine: str = "auto",
        incremental: bool = True,
    ):
        """Bind a reasoner to ``kb``.

        ``max_nodes`` / ``max_branches`` bound the tableau search
        (:class:`~repro.dl.errors.ReasonerLimitExceeded` on overrun);
        ``cache`` shares an existing :class:`~repro.dl.cache.QueryCache`
        across reasoners, while ``use_cache=False`` / ``cache_maxsize``
        configure a private one; ``stats`` shares a
        :class:`~repro.dl.stats.ReasonerStats`; ``search`` picks the
        tableau strategy (``"trail"`` or ``"copying"``); ``budget``
        attaches a default :class:`~repro.dl.budget.Budget` governing
        every service call (per-call ``budget=`` arguments override it);
        ``engine`` selects dispatch: ``"auto"`` tries the saturation
        fast path before the tableau, ``"tableau"`` disables it;
        ``incremental=False`` disables fine-grained invalidation (every
        KB mutation then falls back to wholesale cache clearing).
        """
        if engine not in ("auto", "tableau"):
            raise ValueError(f"unknown engine {engine!r}")
        self.kb = kb
        #: Dispatch policy: ``"auto"`` (saturation fast path in front of
        #: the tableau) or ``"tableau"`` (tableau only).
        self.engine = engine
        self.max_nodes = max_nodes
        self.max_branches = max_branches
        #: The default resource envelope of every service call (None =
        #: only the tableau's own node/branch caps apply).
        self.budget = budget
        #: Tableau search mode: ``"trail"`` (backjumping, default) or
        #: ``"copying"`` (the copy-per-branch reference oracle).
        self.search = search
        self.stats = stats if stats is not None else ReasonerStats()
        self.cache = (
            cache
            if cache is not None
            else QueryCache(enabled=use_cache, maxsize=cache_maxsize)
        )
        if self.cache.stats is None:
            self.cache.stats = self.stats
        #: Whether KB mutations are absorbed through fine-grained
        #: invalidation (dependency-indexed cache survival, incremental
        #: re-saturation, taxonomy reuse) instead of wholesale clearing.
        self.incremental = incremental
        self._tableau = self._build_tableau()
        # Built lazily on the first query (saturating a KB nobody
        # queries would be wasted work); dropped on KB mutation.
        self._saturation: Optional[SaturationEngine] = None
        self._kb_version = kb.version
        # Classification memo: (atoms-key, hierarchy, kb-consistent) of
        # the last classify() call, plus the dirty state accumulated by
        # fine-grained _sync since it was stored (signature vertices of
        # every delta axiom, and the removed/added axiom sets needed to
        # reconstruct the old KB for the safety side-conditions).
        self._classify_memo: Optional[
            Tuple[FrozenSet[AtomicConcept], Dict, bool]
        ] = None
        self._classify_dirty: Set[Tuple[str, str]] = set()
        self._classify_removed: Set[Axiom] = set()
        self._classify_added: Set[Axiom] = set()
        # The meter of the currently executing budgeted service call, if
        # any (installed by _metered; spans every probe of the call).
        self._active_meter: Optional[BudgetMeter] = None

    def _build_tableau(self) -> Tableau:
        # Trail tableaux track provenance so unsat cores can feed both
        # explanation seeding and fine-grained cache invalidation; the
        # per-run overhead is O(probes) (see Tableau._prepare_run_tags).
        return Tableau(
            self.kb,
            max_nodes=self.max_nodes,
            max_branches=self.max_branches,
            stats=self.stats,
            search=self.search,
            track_provenance=(self.search == "trail"),
        )

    def _sync(self) -> None:
        """Absorb KB mutations before answering from tableau or cache.

        The tableau preprocesses the KB once (absorption, role-hierarchy
        closure), so it is as stale as the cache after an ``add()``.
        When the KB's change log can name the net ``(added, removed)``
        delta (and ``incremental`` is on), invalidation is fine-grained:
        only cache entries the delta can affect are dropped
        (:meth:`QueryCache.invalidate_delta`), the saturation engine
        re-saturates just the affected cone, and classification
        dirtiness is tracked per signature vertex.  Otherwise — log
        window exceeded or ``incremental=False`` — everything derived
        from the KB is rebuilt wholesale.
        """
        if self._kb_version == self.kb.version:
            return
        delta = (
            self.kb.delta_since(self._kb_version) if self.incremental else None
        )
        if delta is None:
            self._tableau = self._build_tableau()
            self._saturation = None
            self.cache.clear()
            self._classify_memo = None
            self._classify_dirty.clear()
            self._classify_removed.clear()
            self._classify_added.clear()
            self._kb_version = self.kb.version
            return
        added, removed = delta
        if not added and not removed:
            # The edit netted out (remove-then-re-add): the axiom
            # multiset is unchanged, so every derived structure is
            # still exact.
            self._kb_version = self.kb.version
            return
        with obs_span("incremental_update", stats=self.stats) as span:
            invalidated, survived = self.cache.invalidate_delta(
                added, removed
            )
            self.stats.fine_invalidations += invalidated
            self.stats.cache_entries_survived += survived
            span.set("invalidated", invalidated)
            span.set("survived", survived)
            # The tableau's preprocessed view is rebuilt (it is cheap
            # relative to search); the cache survivors are what make
            # the rebuild pay off.
            self._tableau = self._build_tableau()
            if self._saturation is not None:
                cone = self._saturation.update(added, removed)
                if cone is None:
                    self._saturation = None
                    span.set("resaturation", "full")
                else:
                    self.stats.resaturation_cone_size += cone
                    span.set("resaturation", cone)
            for axiom in added | removed:
                self._classify_dirty |= axiom_signature(axiom)
            self._classify_removed |= removed
            self._classify_added |= added
        self._kb_version = self.kb.version

    def _satisfiable_with(self, probes: Sequence) -> bool:
        """The single cached satisfiability entry point of every service.

        Under ``engine="auto"`` the saturation fast path
        (:mod:`repro.dl.saturation`) is consulted first; it answers
        polynomially for the tractable fragment and returns ``None`` for
        anything it cannot soundly decide, in which case the tableau
        runs.  Both engines write the same cache — a disagreement
        surfaces as a :class:`~repro.dl.errors.CacheConflictError`.

        Cache-soundness invariant: a verdict is stored only *after* an
        engine decided it.  An aborted search (budget exhaustion,
        cancellation, or any other exception) propagates past the
        ``store`` call, so a partial search can never poison the cache —
        post-abort lookups either hit an earlier *decided* entry or
        re-run the tableau from scratch.
        """
        self._sync()
        with obs_span("cache_probe") as probe_span:
            key = probe_set_key(probes) if probes else CONSISTENCY_KEY
            cached = self.cache.lookup(key)
            probe_span.set("hit", cached is not None)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        meter = self._active_meter
        if meter is None and self.budget is not None:
            # Boolean APIs under a constructor-level budget: each probe
            # gets its own metered scope (and raises on exhaustion).
            meter = self.budget.start(self.stats)
        saturation = self._saturation_engine()
        if saturation is not None:
            with obs_span("saturation_run", stats=self.stats) as sat_span:
                sat_span.set("complete", saturation.complete)
                try:
                    answer = saturation.satisfiable_with(probes, meter=meter)
                except BudgetExceeded:
                    self.stats.budget_aborts += 1
                    raise
                sat_span.set("answered", answer is not None)
                sat_span.set("inferences", saturation.inferences)
            if answer is not None:
                self.stats.saturation_queries += 1
                self.cache.store(key, answer)
                set_gauge("repro_query_cache_entries", len(self.cache))
                return answer
            self.stats.saturation_fallbacks += 1
        try:
            result = self._tableau.is_satisfiable(probes, meter=meter)
        except BudgetExceeded:
            self.stats.budget_aborts += 1
            raise
        deps = None
        if not result and self._tableau.track_provenance:
            # The unsat core (a superset of at least one justification)
            # lets fine-grained invalidation keep this verdict across
            # removals that cannot touch its support.
            deps = self._tableau.last_unsat_core
        self.cache.store(key, result, deps=deps)
        set_gauge("repro_query_cache_entries", len(self.cache))
        return result

    def _saturation_engine(self) -> Optional[SaturationEngine]:
        """The saturation fast path, when dispatch allows and it can help.

        ``None`` under ``engine="tableau"`` or when no axiom of the KB
        compiled into the fragment (a fully-residual KB could only ever
        answer degenerate probes, so dispatching there is pure
        overhead).
        """
        if self.engine != "auto":
            return None
        if self._saturation is None:
            self._saturation = SaturationEngine(self.kb)
        return self._saturation if self._saturation.useful else None

    @contextmanager
    def _metered(self, meter: Optional[BudgetMeter]):
        """Install ``meter`` as the scope of every nested tableau probe."""
        previous = self._active_meter
        self._active_meter = meter
        try:
            yield
        finally:
            self._active_meter = previous

    def _start_meter(self, budget: Optional[Budget]) -> Optional[BudgetMeter]:
        """Begin a metered scope from ``budget`` or the default budget."""
        chosen = budget if budget is not None else self.budget
        return None if chosen is None else chosen.start(self.stats)

    def _run_bounded(self, thunk, budget: Optional[Budget]) -> Verdict:
        """Run a boolean service degradingly: decided answer or UNKNOWN.

        Budget exhaustion (and, defensively, any unexpected mid-search
        error) becomes a structured UNKNOWN verdict; usage errors
        (unsupported axioms, parse errors) still propagate — they are
        the caller's bug, not a resource condition.  UNKNOWN is sound:
        the thunk either returned the unbudgeted answer or nothing.
        """
        meter = self._start_meter(budget)
        try:
            with self._metered(meter):
                return Verdict.of(thunk())
        except BudgetExceeded as exc:
            self.stats.unknown_verdicts += 1
            add_event("unknown_verdict", {"reason": exc.reason.value})
            return Verdict.unknown(exc.reason, str(exc))
        except (ParseError, UnsupportedFeature):
            raise
        except Exception as exc:  # contain faults, degrade to UNKNOWN
            self.stats.unknown_verdicts += 1
            add_event(
                "unknown_verdict",
                {"reason": DegradationReason.ERROR.value},
            )
            return Verdict.unknown(
                DegradationReason.ERROR, f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------
    # Core services
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """Whether the KB has a classical model."""
        return self._satisfiable_with(())

    def is_satisfiable(self, concept: Concept) -> bool:
        """Whether ``concept`` has an instance in some model of the KB."""
        return self._satisfiable_with((ConceptAssertion(_PROBE, concept),))

    def model(self):
        """A verified finite model of the KB, or ``None``.

        ``None`` means either the KB is inconsistent or its canonical
        model is not finitely representable from the completion graph
        (see :meth:`~repro.dl.tableau.Tableau.extract_model`).

        Model extraction needs the completion graph, which the query
        cache never stores, so this always re-runs the tableau.
        """
        if not self.is_consistent():
            return None
        # Re-run without probe assertions so the graph matches the KB.
        self._tableau.is_satisfiable()
        return self._tableau.extract_model()

    def subsumes(self, sup: Concept, sub: Concept) -> bool:
        """Whether ``sub [= sup`` holds in every model of the KB."""
        self.stats.subsumption_tests += 1
        return not self.is_satisfiable(And.of(sub, Not(sup)))

    def is_instance(self, individual: Individual, concept: Concept) -> bool:
        """Whether ``a : C`` holds in every model of the KB."""
        probe = ConceptAssertion(individual, Not(concept))
        return not self._satisfiable_with((probe,))

    def entails(self, axiom: Axiom) -> bool:
        """Whether the KB entails the given axiom."""
        if isinstance(axiom, ConceptInclusion):
            return self.subsumes(axiom.sup, axiom.sub)
        if isinstance(axiom, ConceptAssertion):
            return self.is_instance(axiom.individual, axiom.concept)
        if isinstance(axiom, RoleAssertion):
            # R(a, b) is entailed iff adding "a sees no b through R" clashes.
            probe = ConceptAssertion(
                axiom.source,
                Forall(axiom.role, Not(OneOf(frozenset({axiom.target})))),
            )
            return not self._satisfiable_with((probe,))
        if isinstance(axiom, NegativeRoleAssertion):
            # not R(a, b) is entailed iff asserting R(a, b) is impossible.
            probe = RoleAssertion(axiom.role, axiom.source, axiom.target)
            return not self._satisfiable_with((probe,))
        if isinstance(axiom, SameIndividual):
            pair = OneOf(frozenset({axiom.right}))
            return self.is_instance(axiom.left, pair)
        if isinstance(axiom, ConceptEquivalence):
            return self.entails(
                ConceptInclusion(axiom.left, axiom.right)
            ) and self.entails(ConceptInclusion(axiom.right, axiom.left))
        if isinstance(axiom, DifferentIndividuals):
            # a != b is entailed iff identifying them is impossible.
            probe = SameIndividual(axiom.left, axiom.right)
            return not self._satisfiable_with((probe,))
        if isinstance(axiom, DataAssertion):
            # U(a, v) is entailed iff "all of a's U-values differ from v"
            # is impossible.
            from .datatypes import DataOneOf
            from .concepts import DataForall

            excluded = DataOneOf(frozenset({axiom.value})).negate()
            probe = ConceptAssertion(axiom.source, DataForall(axiom.role, excluded))
            return not self._satisfiable_with((probe,))
        if isinstance(axiom, RoleInclusion):
            # R [= S is entailed iff two fresh individuals connected by R
            # but provably not by S are impossible.
            source = Individual("__sub_probe_a__")
            target = Individual("__sub_probe_b__")
            nominal = OneOf(frozenset({target}))
            probes = (
                ConceptAssertion(source, Exists(axiom.sub, nominal)),
                ConceptAssertion(source, Forall(axiom.sup, Not(nominal))),
            )
            return not self._satisfiable_with(probes)
        raise UnsupportedAxiomError(axiom)

    # ------------------------------------------------------------------
    # Degrading (budgeted) services
    # ------------------------------------------------------------------
    def consistency_verdict(self, budget: Optional[Budget] = None) -> Verdict:
        """Three-way consistency: TRUE, FALSE, or UNKNOWN on exhaustion.

        The degrading counterpart of :meth:`is_consistent`: instead of
        raising :class:`~repro.dl.errors.BudgetExceeded` when the
        ``budget`` (or the constructor-level default budget) runs out,
        the exhaustion is returned as a structured
        :class:`~repro.dl.budget.Verdict` carrying the
        :class:`~repro.dl.errors.DegradationReason`.
        """
        return self._run_bounded(self.is_consistent, budget)

    def satisfiable_verdict(
        self, concept: Concept, budget: Optional[Budget] = None
    ) -> Verdict:
        """Three-way concept satisfiability (degrading :meth:`is_satisfiable`)."""
        return self._run_bounded(lambda: self.is_satisfiable(concept), budget)

    def instance_verdict(
        self,
        individual: Individual,
        concept: Concept,
        budget: Optional[Budget] = None,
    ) -> Verdict:
        """Three-way instance checking (degrading :meth:`is_instance`)."""
        return self._run_bounded(
            lambda: self.is_instance(individual, concept), budget
        )

    def subsumption_verdict(
        self, sup: Concept, sub: Concept, budget: Optional[Budget] = None
    ) -> Verdict:
        """Three-way subsumption (degrading :meth:`subsumes`)."""
        return self._run_bounded(lambda: self.subsumes(sup, sub), budget)

    def entails_verdict(
        self, axiom: Axiom, budget: Optional[Budget] = None
    ) -> Verdict:
        """Three-way entailment (degrading :meth:`entails`).

        The whole dispatch of :meth:`entails` — including multi-probe
        axioms like equivalences — runs under one metered scope, so the
        deadline and the cumulative branch/trail caps govern the entire
        question, not each probe separately.  Unsupported axiom kinds
        still raise :class:`~repro.dl.errors.UnsupportedAxiomError`.
        """
        return self._run_bounded(lambda: self.entails(axiom), budget)

    def entails_with_escalation(
        self,
        axiom: Axiom,
        budget: Budget,
        factor: float = 4.0,
        attempts: int = 3,
        ceiling: Optional[Budget] = None,
    ) -> Verdict:
        """Entailment under :func:`~repro.dl.budget.retry_with_escalation`.

        Starts from ``budget`` and geometrically enlarges it (by
        ``factor``, up to ``attempts`` probes, clamped to ``ceiling``)
        while the answer stays UNKNOWN.
        """
        return retry_with_escalation(
            lambda b: self.entails_verdict(axiom, budget=b),
            budget,
            factor=factor,
            attempts=attempts,
            ceiling=ceiling,
            stats=self.stats,
        )

    def classify_bounded(
        self,
        atoms: Optional[Iterable[AtomicConcept]] = None,
        budget: Optional[Budget] = None,
    ) -> "PartialClassification":
        """Classification that degrades to a *partial* hierarchy.

        Probes atomic subsumption pairwise (memoised by the query cache)
        under one metered scope.  When the budget runs out the decided
        rows are returned as-is together with the list of undecided
        ``(sub, sup)`` pairs and the :class:`~repro.dl.errors.DegradationReason`
        — never a wrong or partially-filled row.  With no exhaustion the
        result equals :meth:`classify` exactly.
        """
        if atoms is None:
            atoms = self.kb.concepts_in_signature()
        ordered = sorted(set(atoms), key=lambda a: a.name)
        if not ordered:
            return PartialClassification(
                hierarchy={}, undecided=(), reason=None
            )
        universe = frozenset(ordered)
        meter = self._start_meter(budget)
        reason: Optional[DegradationReason] = None
        message = ""
        hierarchy: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
        undecided: List[Tuple[AtomicConcept, AtomicConcept]] = []
        with self._metered(meter):
            try:
                consistent = self.is_consistent()
            except BudgetExceeded as exc:
                return PartialClassification(
                    hierarchy={},
                    undecided=tuple(
                        (sub, sup) for sub in ordered for sup in ordered
                    ),
                    reason=exc.reason,
                    message=str(exc),
                )
            if not consistent:
                # Everything subsumes everything in an inconsistent KB.
                return PartialClassification(
                    hierarchy={atom: universe for atom in ordered},
                    undecided=(),
                    reason=None,
                )
            for row, sub in enumerate(ordered):
                if reason is not None:
                    undecided.extend((sub, sup) for sup in ordered)
                    continue
                subsumers: Set[AtomicConcept] = set()
                for col, sup in enumerate(ordered):
                    try:
                        if self.subsumes(sup, sub):
                            subsumers.add(sup)
                    except BudgetExceeded as exc:
                        # Skip-and-record: the rest of this row and all
                        # later rows become undecided pairs.
                        reason = exc.reason
                        message = str(exc)
                        undecided.extend(
                            (sub, later) for later in ordered[col:]
                        )
                        break
                else:
                    hierarchy[sub] = frozenset(subsumers)
        if reason is not None:
            self.stats.unknown_verdicts += 1
        return PartialClassification(
            hierarchy=hierarchy,
            undecided=tuple(undecided),
            reason=reason,
            message=message,
        )

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def _entailment_probes(self, axiom: Axiom):
        """The refutation probe sets of :meth:`entails`.

        Returns a tuple of probe tuples; the axiom is entailed iff the KB
        is unsatisfiable together with *each* probe set.  Mirrors the
        dispatch of :meth:`entails` exactly (kept separate so the
        explanation path cannot perturb the counters of the query path).
        """
        if isinstance(axiom, ConceptInclusion):
            return (
                (
                    ConceptAssertion(
                        _PROBE, And.of(axiom.sub, Not(axiom.sup))
                    ),
                ),
            )
        if isinstance(axiom, ConceptAssertion):
            return ((ConceptAssertion(axiom.individual, Not(axiom.concept)),),)
        if isinstance(axiom, RoleAssertion):
            probe = ConceptAssertion(
                axiom.source,
                Forall(axiom.role, Not(OneOf(frozenset({axiom.target})))),
            )
            return ((probe,),)
        if isinstance(axiom, NegativeRoleAssertion):
            return ((RoleAssertion(axiom.role, axiom.source, axiom.target),),)
        if isinstance(axiom, SameIndividual):
            pair = OneOf(frozenset({axiom.right}))
            return ((ConceptAssertion(axiom.left, Not(pair)),),)
        if isinstance(axiom, ConceptEquivalence):
            return self._entailment_probes(
                ConceptInclusion(axiom.left, axiom.right)
            ) + self._entailment_probes(
                ConceptInclusion(axiom.right, axiom.left)
            )
        if isinstance(axiom, DifferentIndividuals):
            return ((SameIndividual(axiom.left, axiom.right),),)
        if isinstance(axiom, DataAssertion):
            from .datatypes import DataOneOf
            from .concepts import DataForall

            excluded = DataOneOf(frozenset({axiom.value})).negate()
            probe = ConceptAssertion(
                axiom.source, DataForall(axiom.role, excluded)
            )
            return ((probe,),)
        if isinstance(axiom, RoleInclusion):
            source = Individual("__sub_probe_a__")
            target = Individual("__sub_probe_b__")
            nominal = OneOf(frozenset({target}))
            return (
                (
                    ConceptAssertion(source, Exists(axiom.sub, nominal)),
                    ConceptAssertion(source, Forall(axiom.sup, Not(nominal))),
                ),
            )
        raise UnsupportedAxiomError(axiom, service="explain")

    def _provenance_tableau(self) -> Tableau:
        """A provenance-tracking trail tableau over the current KB.

        Trail reasoners reuse the main tableau directly (it already
        tracks provenance for fine-grained invalidation); copying
        reasoners lazily build a separate trail instance, rebuilt when
        the KB version moves.
        """
        if self._tableau.track_provenance:
            return self._tableau
        cached = getattr(self, "_traced_tableau", None)
        if cached is not None and cached.kb is self.kb and (
            getattr(self, "_traced_tableau_version", None) == self.kb.version
        ):
            return cached
        tableau = Tableau(
            self.kb,
            max_nodes=self.max_nodes,
            max_branches=self.max_branches,
            stats=self.stats,
            search="trail",
            track_provenance=True,
        )
        self._traced_tableau = tableau
        self._traced_tableau_version = self.kb.version
        return tableau

    def _shrink_check(self, axiom: Axiom):
        """The monotone re-check used by justification shrinking.

        Each call builds a fresh sub-KB reasoner with the query cache
        *bypassed*: cached verdicts describe the full KB and must not
        leak into questions about its subsets.
        """

        def check(axioms: Sequence[Axiom]) -> bool:
            self.stats.shrink_probes += 1
            sub = Reasoner(
                KnowledgeBase.of(axioms),
                max_nodes=self.max_nodes,
                max_branches=self.max_branches,
                use_cache=False,
                search=self.search,
            )
            try:
                return sub.entails(axiom)
            except Exception:
                # A sub-KB that blows a resource limit cannot support
                # the deletion, so the axiom is kept.
                return False

        return check

    def explain(self, axiom: Axiom, trace: bool = False):
        """Why (or that) the KB entails ``axiom``.

        Returns an :class:`repro.explain.model.Explanation`.  When the
        axiom is entailed it carries one subset-minimal
        :class:`~repro.explain.model.Justification` per independent
        evidence direction (equivalences merge both directions into one
        justification, since both must hold together).  The tableau's
        clash provenance seeds the search; deletion-based shrinking with
        the cache bypassed guarantees minimality regardless of the seed.

        With ``trace=True`` the probe runs record structured clash
        traces (trail search; see :class:`repro.explain.model.Trace`).
        """
        from ..explain.justify import minimal_justification
        from ..explain.model import Explanation, Trace

        self._sync()
        probe_sets = self._entailment_probes(axiom)
        tableau = self._provenance_tableau()
        traces = []
        entailed = True
        seed: Set[Axiom] = set()
        seed_known = True
        for probes in probe_sets:
            recorder = Trace() if trace else None
            satisfiable = tableau.is_satisfiable(probes, trace=recorder)
            if recorder is not None:
                traces.append(recorder)
            if satisfiable:
                entailed = False
                break
            core = tableau.last_unsat_core
            if core is None:
                seed_known = False
            else:
                seed |= core
        if not entailed:
            return Explanation(
                query=axiom, entailed=False, traces=tuple(traces)
            )
        check = self._shrink_check(axiom)
        justification = minimal_justification(
            list(self.kb.axioms()),
            check,
            seed=frozenset(seed) if seed_known else None,
        )
        self.stats.explanations_computed += 1
        return Explanation(
            query=axiom,
            entailed=True,
            justifications=(justification,),
            traces=tuple(traces),
        )

    def explain_inconsistency(self, trace: bool = False):
        """A minimal unsatisfiable axiom subset, when the KB has one.

        Returns an :class:`repro.explain.model.InconsistencyExplanation`;
        its justification is a MUPS (minimal classically-unsatisfiable
        sub-KB) found by the same provenance-seeded deletion shrinking.
        """
        from ..explain.justify import minimal_justification
        from ..explain.model import InconsistencyExplanation, Trace

        self._sync()
        tableau = self._provenance_tableau()
        recorder = Trace() if trace else None
        if tableau.is_satisfiable(trace=recorder):
            return InconsistencyExplanation(
                consistent=True,
                traces=(recorder,) if recorder is not None else (),
            )

        def check(axioms: Sequence[Axiom]) -> bool:
            self.stats.shrink_probes += 1
            sub = Reasoner(
                KnowledgeBase.of(axioms),
                max_nodes=self.max_nodes,
                max_branches=self.max_branches,
                use_cache=False,
                search=self.search,
            )
            try:
                return not sub.is_consistent()
            except Exception:
                return False

        justification = minimal_justification(
            list(self.kb.axioms()), check, seed=tableau.last_unsat_core
        )
        self.stats.explanations_computed += 1
        return InconsistencyExplanation(
            consistent=False,
            justification=justification,
            traces=(recorder,) if recorder is not None else (),
        )

    def entails_all(self, axioms: Iterable[Axiom]) -> bool:
        """Whether the KB entails every axiom (OWL DL ontology entailment).

        The batch is deduplicated and sorted into a canonical order so
        repeated probes hit the cache and related probes run adjacently;
        order cannot change the verdict (every check is independent).
        """
        unique = sorted(set(axioms), key=repr)
        return all(self.entails(axiom) for axiom in unique)

    def entailments(self, axioms: Iterable[Axiom]) -> Dict[Axiom, bool]:
        """The per-axiom verdicts of a batch, evaluated in cache-friendly
        (deduplicated, canonically sorted) order."""
        unique = sorted(set(axioms), key=repr)
        return {axiom: self.entails(axiom) for axiom in unique}

    # ------------------------------------------------------------------
    # Derived services
    # ------------------------------------------------------------------
    def equivalent(self, left: Concept, right: Concept) -> bool:
        """Whether two concepts are equivalent under the KB."""
        return self.subsumes(left, right) and self.subsumes(right, left)

    def instances_of(self, concept: Concept) -> FrozenSet[Individual]:
        """All named individuals provably in ``concept``."""
        return frozenset(
            individual
            for individual in self.kb.individuals_in_signature()
            if self.is_instance(individual, concept)
        )

    def types_of(self, individual: Individual) -> FrozenSet[AtomicConcept]:
        """All atomic concepts the individual provably belongs to."""
        return frozenset(
            concept
            for concept in self.kb.concepts_in_signature()
            if self.is_instance(individual, concept)
        )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(
        self, atoms: Optional[Iterable[AtomicConcept]] = None
    ) -> Dict[AtomicConcept, FrozenSet[AtomicConcept]]:
        """The full atomic subsumption hierarchy.

        Maps each atomic concept to the set of its (not necessarily
        strict) atomic subsumers.  Instead of the naive pairwise sweep
        (kept as :meth:`classify_pairwise`, the reference oracle), each
        concept is inserted into a growing taxonomy DAG:

        * **told subsumers** — inclusions ``A [= B1 and ... and Bk`` with
          atomic left side yield asserted subsumers, closed transitively;
          they answer traversal questions without the tableau and fix a
          parents-before-children insertion order;
        * **enhanced top search** — a node is tested only when *all* its
          parents subsume the new concept (if any parent fails, no
          descendant can subsume, by transitivity);
        * **enhanced bottom search** — dually, a node is tested only when
          all its children are subsumed by the new concept.

        The result is identical to the pairwise sweep; the number of
        tableau runs (see :attr:`stats`) is far below ``n**2`` on any
        hierarchy that is not a flat clique.

        Repeated calls are memoised per atom set.  After KB mutations
        absorbed by fine-grained :meth:`_sync`, the memoised taxonomy is
        reused where the soundness side-conditions of
        ``docs/THEORY.md`` section 12 allow: wholesale for a pure-ABox
        delta on nominal-free consistent KBs, and row-by-row (only
        signature-connected atoms re-probed) when every axiom is
        component-safe.
        """
        self._sync()
        if atoms is None:
            atoms = self.kb.concepts_in_signature()
        ordered = sorted(set(atoms), key=lambda a: a.name)
        universe = frozenset(ordered)
        if not ordered:
            return {}
        with obs_span("classify", stats=self.stats) as span:
            span.set("atoms", len(ordered))
            if not self.is_consistent():
                # Everything subsumes everything in an inconsistent KB.
                hierarchy = {atom: universe for atom in ordered}
                self._store_classification(universe, hierarchy, False)
                return hierarchy
            reused = self._reuse_classification(ordered, universe, span)
            if reused is not None:
                self._store_classification(universe, reused, True)
                return dict(reused)
            hierarchy = self._classify_full(ordered, universe)
            self._store_classification(universe, hierarchy, True)
            return hierarchy

    def _classify_full(
        self,
        ordered: Sequence[AtomicConcept],
        universe: FrozenSet[AtomicConcept],
    ) -> Dict[AtomicConcept, FrozenSet[AtomicConcept]]:
        """The traversal-insertion classification of a consistent KB."""
        told = self._told_subsumers(universe)
        taxonomy = _Taxonomy()
        unsatisfiable: List[AtomicConcept] = []
        for concept in _told_order(ordered, told):
            if not self.is_satisfiable(concept):
                # Bottom-equivalent: subsumed by every atom, subsumes
                # only other unsatisfiable atoms.
                unsatisfiable.append(concept)
                continue
            self._insert(taxonomy, concept, told)
        hierarchy = taxonomy.hierarchy()
        for atom in unsatisfiable:
            hierarchy[atom] = universe
        return hierarchy

    def _store_classification(
        self,
        key: FrozenSet[AtomicConcept],
        hierarchy: Dict[AtomicConcept, FrozenSet[AtomicConcept]],
        consistent: bool,
    ) -> None:
        """Memoise a just-computed taxonomy and reset dirty tracking.

        Sound because the hierarchy reflects the KB *now* (after
        :meth:`_sync`): any later mutation re-populates the dirty sets
        before the memo can be consulted again.
        """
        self._classify_memo = (key, dict(hierarchy), consistent)
        self._classify_dirty.clear()
        self._classify_removed.clear()
        self._classify_added.clear()

    def _reuse_classification(
        self,
        ordered: Sequence[AtomicConcept],
        universe: FrozenSet[AtomicConcept],
        span,
    ) -> Optional[Dict[AtomicConcept, FrozenSet[AtomicConcept]]]:
        """The memoised taxonomy, updated incrementally — or ``None``.

        ``None`` means no sound reuse applies and the caller must
        reclassify from scratch.  Three reuse tiers (the KB is already
        known consistent here; the memo records whether the *old* KB
        was):

        1. no mutations since the memo — verbatim hit;
        2. pure-ABox delta on nominal-free KBs — subsumption depends
           only on the TBox (disjoint-union argument), so the taxonomy
           is unchanged;
        3. every axiom of old and new KB component-safe — only atoms
           signature-connected to the delta can change rows; merged
           rows re-probe exactly those (cache-assisted).
        """
        memo = self._classify_memo
        if memo is None:
            return None
        key, old_hierarchy, was_consistent = memo
        if key != universe:
            return None
        dirty = (
            self._classify_dirty
            or self._classify_removed
            or self._classify_added
        )
        if not dirty:
            return old_hierarchy
        if not was_consistent:
            return None
        delta_axioms = self._classify_added | self._classify_removed
        old_and_new = list(self.kb.axioms()) + list(self._classify_removed)
        if all(
            isinstance(axiom, ABoxAxiom) for axiom in delta_axioms
        ) and not _kb_has_nominals(old_and_new):
            span.set("taxonomy_reuse", "abox")
            return old_hierarchy
        affected = affected_atoms(old_and_new, self._classify_dirty)
        if affected is None:
            return None
        span.set("taxonomy_reuse", "component")
        span.set("affected_atoms", len(affected))
        merged: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
        touched = affected & universe
        for concept in ordered:
            if concept in touched:
                merged[concept] = frozenset(
                    sup for sup in ordered if self.subsumes(sup, concept)
                )
            else:
                # An unaffected atom keeps its old verdicts against
                # every other unaffected atom; only pairs involving an
                # affected atom are re-asked.  (For an unsatisfiable
                # atom the re-probes all answer True, so the row stays
                # the full universe.)
                kept = frozenset(
                    sup
                    for sup in old_hierarchy[concept]
                    if sup not in touched
                )
                merged[concept] = kept | frozenset(
                    sup
                    for sup in touched
                    if self.subsumes(sup, concept)
                )
        return merged

    def classify_pairwise(
        self, atoms: Optional[Iterable[AtomicConcept]] = None
    ) -> Dict[AtomicConcept, FrozenSet[AtomicConcept]]:
        """The O(n^2) pairwise reference classification.

        Same result as :meth:`classify`; kept for differential testing
        and as the benchmark baseline for the traversal classifier.
        """
        if atoms is None:
            atoms = self.kb.concepts_in_signature()
        ordered = sorted(set(atoms), key=lambda a: a.name)
        hierarchy: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
        for sub in ordered:
            hierarchy[sub] = frozenset(
                sup for sup in ordered if self.subsumes(sup, sub)
            )
        return hierarchy

    def _told_subsumers(
        self, atoms: FrozenSet[AtomicConcept]
    ) -> Dict[AtomicConcept, FrozenSet[AtomicConcept]]:
        """Transitively closed asserted subsumers, restricted to ``atoms``.

        Sound by construction: ``A [= B1 and ... and Bk`` entails
        ``A [= Bi`` for every conjunct, and subsumption is transitive.
        """
        direct: Dict[AtomicConcept, Set[AtomicConcept]] = {}
        for inclusion in self.kb.concept_inclusions:
            sub = inclusion.sub
            if isinstance(sub, AtomicConcept) and sub in atoms:
                direct.setdefault(sub, set()).update(
                    _conjoined_atoms(inclusion.sup, atoms)
                )
        closed: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
        for atom in atoms:
            reached: Set[AtomicConcept] = set()
            frontier = list(direct.get(atom, ()))
            while frontier:
                current = frontier.pop()
                if current in reached or current == atom:
                    continue
                reached.add(current)
                frontier.extend(direct.get(current, ()))
            if reached:
                closed[atom] = frozenset(reached)
        return closed

    def _insert(
        self,
        taxonomy: "_Taxonomy",
        concept: AtomicConcept,
        told: Dict[AtomicConcept, FrozenSet[AtomicConcept]],
    ) -> None:
        """Place one satisfiable atom into the taxonomy DAG."""
        subsumers = self._top_search(taxonomy, concept, told)
        parents = {
            node
            for node in subsumers
            if node is not taxonomy.top
            and not any(child in subsumers for child in node.children)
        } or {taxonomy.top}
        subsumees = self._bottom_search(taxonomy, concept, told)
        equivalent = subsumers & subsumees
        if equivalent:
            # C sits exactly on an existing node: merge, no new edges.
            node = next(iter(equivalent))
            node.members.add(concept)
            return
        children = {
            node
            for node in subsumees
            if not any(parent in subsumees for parent in node.parents)
        }
        taxonomy.insert(concept, parents, children)

    def _top_search(
        self,
        taxonomy: "_Taxonomy",
        concept: AtomicConcept,
        told: Dict[AtomicConcept, FrozenSet[AtomicConcept]],
    ) -> Set["_TaxonomyNode"]:
        """All nodes whose representative subsumes ``concept``.

        Enhanced traversal: subsumers are upward-closed in the DAG, so a
        node with a non-subsuming parent is pruned without a tableau call;
        told subsumers short-circuit positively.
        """
        told_subsumers = told.get(concept, frozenset())
        decided: Dict[_TaxonomyNode, bool] = {taxonomy.top: True}

        def subsumes_concept(node: _TaxonomyNode) -> bool:
            known = decided.get(node)
            if known is not None:
                return known
            if not all(subsumes_concept(parent) for parent in node.parents):
                result = False
            elif node.members & told_subsumers:
                self.stats.told_subsumptions += 1
                result = True
            else:
                result = self.subsumes(node.rep, concept)
            decided[node] = result
            return result

        return {node for node in taxonomy.nodes if subsumes_concept(node)}

    def _bottom_search(
        self,
        taxonomy: "_Taxonomy",
        concept: AtomicConcept,
        told: Dict[AtomicConcept, FrozenSet[AtomicConcept]],
    ) -> Set["_TaxonomyNode"]:
        """All nodes whose representative is subsumed by ``concept``.

        Dual pruning: subsumees are downward-closed, so a node with a
        non-subsumed child cannot be subsumed; a node whose own told
        subsumers include ``concept`` is subsumed without a tableau call.
        """
        decided: Dict[_TaxonomyNode, bool] = {}

        def subsumed_by_concept(node: _TaxonomyNode) -> bool:
            known = decided.get(node)
            if known is not None:
                return known
            if not all(subsumed_by_concept(child) for child in node.children):
                result = False
            elif any(
                concept in told.get(member, ()) for member in node.members
            ):
                self.stats.told_subsumptions += 1
                result = True
            else:
                result = self.subsumes(concept, node.rep)
            decided[node] = result
            return result

        return {node for node in taxonomy.nodes if subsumed_by_concept(node)}

    def unsatisfiable_concepts(self) -> FrozenSet[AtomicConcept]:
        """Atomic concepts with no possible instances under the KB."""
        return frozenset(
            concept
            for concept in self.kb.concepts_in_signature()
            if not self.is_satisfiable(concept)
        )


# ---------------------------------------------------------------------------
# Partial classification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PartialClassification:
    """The possibly-degraded result of :meth:`Reasoner.classify_bounded`.

    ``hierarchy`` maps every *fully decided* atom to its complete
    subsumer set (rows are all-or-nothing, so a present row is exactly
    what :meth:`Reasoner.classify` would report); ``undecided`` lists
    the ``(sub, sup)`` pairs the budget did not cover; ``reason`` and
    ``message`` describe the exhaustion (both empty when the
    classification completed).
    """

    hierarchy: Dict["AtomicConcept", FrozenSet["AtomicConcept"]]
    undecided: Tuple[Tuple["AtomicConcept", "AtomicConcept"], ...]
    reason: Optional[DegradationReason] = None
    message: str = ""

    @property
    def complete(self) -> bool:
        """Whether every requested pair was decided."""
        return not self.undecided


# ---------------------------------------------------------------------------
# Taxonomy DAG
# ---------------------------------------------------------------------------

class _TaxonomyNode:
    """One equivalence class of atomic concepts in the taxonomy DAG."""

    __slots__ = ("members", "parents", "children")

    def __init__(self, members: Set[AtomicConcept]):
        self.members = members
        self.parents: Set[_TaxonomyNode] = set()
        self.children: Set[_TaxonomyNode] = set()

    @property
    def rep(self) -> AtomicConcept:
        """The representative used in tableau tests."""
        return next(iter(self.members))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<node {sorted(m.name for m in self.members)}>"


class _Taxonomy:
    """A growing subsumption DAG with a virtual top element.

    Edges are covering links between equivalence classes; the ancestor
    closure over inserted atoms always equals entailed subsumption —
    that invariant is what makes the enhanced searches complete.
    """

    def __init__(self) -> None:
        self.top = _TaxonomyNode(set())
        self.nodes: List[_TaxonomyNode] = []

    def insert(
        self,
        concept: AtomicConcept,
        parents: Set[_TaxonomyNode],
        children: Set[_TaxonomyNode],
    ) -> None:
        node = _TaxonomyNode({concept})
        for parent in parents:
            # Direct parent-child links now route through the new node.
            for child in children & parent.children:
                parent.children.discard(child)
                child.parents.discard(parent)
            parent.children.add(node)
            node.parents.add(parent)
        for child in children:
            child.parents.add(node)
            node.children.add(child)
        self.nodes.append(node)

    def hierarchy(self) -> Dict[AtomicConcept, FrozenSet[AtomicConcept]]:
        """Reflexive-transitive subsumers of every inserted atom."""
        ancestors: Dict[_TaxonomyNode, FrozenSet[AtomicConcept]] = {
            self.top: frozenset()
        }

        def ancestry(node: _TaxonomyNode) -> FrozenSet[AtomicConcept]:
            known = ancestors.get(node)
            if known is None:
                known = frozenset(node.members).union(
                    *(ancestry(parent) for parent in node.parents)
                )
                ancestors[node] = known
            return known

        result: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
        for node in self.nodes:
            subsumers = ancestry(node)
            for member in node.members:
                result[member] = subsumers
        return result


def _kb_has_nominals(axioms: Iterable[Axiom]) -> bool:
    """Whether any concept in ``axioms`` mentions a nominal (``OneOf``).

    Nominal-freedom is what makes models closed under disjoint union,
    the side condition of the pure-ABox taxonomy-reuse rule.
    """
    for axiom in axioms:
        if isinstance(axiom, ConceptInclusion):
            if nominals(axiom.sub) or nominals(axiom.sup):
                return True
        elif isinstance(axiom, ConceptEquivalence):
            if nominals(axiom.left) or nominals(axiom.right):
                return True
        elif isinstance(axiom, ConceptAssertion):
            if nominals(axiom.concept):
                return True
    return False


def _conjoined_atoms(
    concept: Concept, atoms: FrozenSet[AtomicConcept]
) -> Set[AtomicConcept]:
    """The atomic conjuncts of a concept (told-subsumer candidates)."""
    if isinstance(concept, AtomicConcept):
        return {concept} if concept in atoms else set()
    if isinstance(concept, And):
        found: Set[AtomicConcept] = set()
        for operand in concept.operands:
            found |= _conjoined_atoms(operand, atoms)
        return found
    return set()


def _told_order(
    atoms: Sequence[AtomicConcept],
    told: Dict[AtomicConcept, FrozenSet[AtomicConcept]],
) -> List[AtomicConcept]:
    """Atoms in told-subsumer topological order (parents first).

    Inserting a concept after its told subsumers lets the traversal
    searches answer those nodes without tableau calls.  Cycles (mutual
    told subsumption) fall back to the incoming deterministic order.
    """
    ordered: List[AtomicConcept] = []
    visiting: Set[AtomicConcept] = set()
    placed: Set[AtomicConcept] = set()

    def visit(atom: AtomicConcept) -> None:
        if atom in placed or atom in visiting:
            return
        visiting.add(atom)
        for subsumer in sorted(told.get(atom, ()), key=lambda a: a.name):
            visit(subsumer)
        visiting.discard(atom)
        placed.add(atom)
        ordered.append(atom)

    for atom in atoms:
        visit(atom)
    return ordered
