"""Axioms of classical SHOIN(D) TBoxes and ABoxes (paper Table 1, bottom).

Covers concept inclusion, object/datatype role inclusion, role
transitivity, concept and role assertions, datatype role assertions, and
individual (in)equality.  Equivalence axioms are provided as a convenience
and normalise to a pair of inclusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .concepts import Concept
from .individuals import DataValue, Individual
from .roles import AtomicRole, DatatypeRole, ObjectRole


class Axiom:
    """Base class of classical axioms."""


class TBoxAxiom(Axiom):
    """Base class of terminological axioms."""


class ABoxAxiom(Axiom):
    """Base class of assertional axioms."""


@dataclass(frozen=True)
class ConceptInclusion(TBoxAxiom):
    """Classical concept inclusion ``C1 [= C2``."""

    sub: Concept
    sup: Concept

    def __repr__(self) -> str:
        return f"{self.sub!r} [= {self.sup!r}"


@dataclass(frozen=True)
class ConceptEquivalence(TBoxAxiom):
    """Concept equivalence, shorthand for inclusions both ways."""

    left: Concept
    right: Concept

    def inclusions(self) -> Tuple[ConceptInclusion, ConceptInclusion]:
        """The two inclusions this equivalence abbreviates."""
        return (
            ConceptInclusion(self.left, self.right),
            ConceptInclusion(self.right, self.left),
        )

    def __repr__(self) -> str:
        return f"{self.left!r} == {self.right!r}"


@dataclass(frozen=True)
class RoleInclusion(TBoxAxiom):
    """Object role inclusion ``R1 [= R2`` (role expressions may be inverses)."""

    sub: ObjectRole
    sup: ObjectRole

    def __repr__(self) -> str:
        return f"{self.sub!r} [= {self.sup!r}"


@dataclass(frozen=True)
class DatatypeRoleInclusion(TBoxAxiom):
    """Datatype role inclusion ``U1 [= U2``."""

    sub: DatatypeRole
    sup: DatatypeRole

    def __repr__(self) -> str:
        return f"{self.sub!r} [= {self.sup!r}"


@dataclass(frozen=True)
class Transitivity(TBoxAxiom):
    """Transitivity declaration ``Trans(R)`` for a named object role."""

    role: AtomicRole

    def __repr__(self) -> str:
        return f"Trans({self.role!r})"


@dataclass(frozen=True)
class ConceptAssertion(ABoxAxiom):
    """Individual membership assertion ``a : C``."""

    individual: Individual
    concept: Concept

    def __repr__(self) -> str:
        return f"{self.individual!r} : {self.concept!r}"


@dataclass(frozen=True)
class RoleAssertion(ABoxAxiom):
    """Object role assertion ``R(a, b)``."""

    role: ObjectRole
    source: Individual
    target: Individual

    def normalised(self) -> "RoleAssertion":
        """Rewritten so the role is a named role (inverses swap arguments)."""
        if self.role.is_inverse:
            return RoleAssertion(self.role.named, self.target, self.source)
        return self

    def __repr__(self) -> str:
        return f"{self.role!r}({self.source!r}, {self.target!r})"


@dataclass(frozen=True)
class NegativeRoleAssertion(ABoxAxiom):
    """Negative object role assertion ``not R(a, b)`` (OWL 2 extension).

    Classically: the pair is outside the role's extension.  Four-valuedly
    (see ``repro.semantics.four_interpretation``): the pair carries
    *negative evidence*, ``(a, b) in proj-(R)``.
    """

    role: ObjectRole
    source: Individual
    target: Individual

    def normalised(self) -> "NegativeRoleAssertion":
        """Rewritten so the role is a named role (inverses swap arguments)."""
        if self.role.is_inverse:
            return NegativeRoleAssertion(self.role.named, self.target, self.source)
        return self

    def __repr__(self) -> str:
        return f"not {self.role!r}({self.source!r}, {self.target!r})"


@dataclass(frozen=True)
class DataAssertion(ABoxAxiom):
    """Datatype role assertion ``U(a, v)``."""

    role: DatatypeRole
    source: Individual
    value: DataValue

    def __repr__(self) -> str:
        return f"{self.role!r}({self.source!r}, {self.value!r})"


@dataclass(frozen=True)
class SameIndividual(ABoxAxiom):
    """Individual equality ``a = b``."""

    left: Individual
    right: Individual

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True)
class DifferentIndividuals(ABoxAxiom):
    """Individual inequality ``a != b``."""

    left: Individual
    right: Individual

    def __repr__(self) -> str:
        return f"{self.left!r} != {self.right!r}"


def expand_equivalences(axioms: Iterator[Axiom]) -> Iterator[Axiom]:
    """Replace every equivalence axiom by its two inclusions."""
    for axiom in axioms:
        if isinstance(axiom, ConceptEquivalence):
            yield from axiom.inclusions()
        else:
            yield axiom
