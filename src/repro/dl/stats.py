"""Reasoner statistics: call counters shared by tableau, cache, and services.

Wall-clock timings (``harness.timing``) vary with the machine; these
counters do not.  They let benchmarks and tests assert *how much work* a
reasoning service performed — tableau runs issued, branches explored,
query-cache hits — so an optimisation like traversal classification can be
pinned down as "strictly fewer tableau calls than the pairwise sweep"
rather than "felt faster today".

One :class:`ReasonerStats` instance is threaded through a
:class:`~repro.dl.reasoner.Reasoner` (and, for the four-valued layer,
through :class:`~repro.four_dl.reasoner4.Reasoner4` into the classical
reasoner it reduces to), accumulating monotonically.  ``snapshot()`` and
subtraction give per-operation deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class ReasonerStats:
    """Monotone counters of reasoning work.

    * ``tableau_runs`` — completed :meth:`Tableau.is_satisfiable` calls;
    * ``branches_explored`` — completion-graph branches searched across
      all runs (each run explores at least one);
    * ``cache_hits`` / ``cache_misses`` — query-cache outcomes;
    * ``cache_evictions`` — entries dropped by the query cache's LRU bound;
    * ``cache_conflicts`` — attempted stores that *disagreed* with a live
      cached verdict (a dual-engine soundness tripwire; the store raises
      :class:`~repro.dl.errors.CacheConflictError` after counting);
    * ``saturation_queries`` — satisfiability probes answered by the
      polynomial saturation fast path (no tableau run);
    * ``saturation_fallbacks`` — probes the saturation engine declined
      (outside the fragment, or SAT without a padded-model witness) and
      handed to the tableau;
    * ``subsumption_tests`` — tableau-backed subsumption questions asked
      (cache hits included; compare with ``tableau_runs`` to see sharing);
    * ``told_subsumptions`` — subsumption questions answered from told
      (asserted) information during classification, no tableau involved;
    * ``trail_length`` — undo entries recorded by trail-based search
      (the in-place mutations that replace whole-graph copies);
    * ``backjumps`` — clashes whose dependency set let the search jump
      over at least one pending branch point;
    * ``branch_points_skipped`` — branch points discarded unexplored by
      those jumps (each had untried alternatives pruned);
    * ``blocking_checks`` — node blocking signatures (re)computed; with
      incremental maintenance this stays far below nodes x iterations;
    * ``explanations_computed`` — ``explain(...)`` calls that produced an
      :class:`~repro.explain.model.Explanation`;
    * ``shrink_probes`` — entailment re-checks issued by deletion-based
      justification shrinking (each runs on a candidate sub-KB with the
      query cache bypassed);
    * ``trace_events`` — structured trace events recorded while a
      :class:`~repro.explain.model.Trace` was attached to a tableau run;
    * ``fine_invalidations`` — cache entries dropped by fine-grained
      (dependency-indexed) invalidation after a KB mutation;
    * ``cache_entries_survived`` — cache entries that outlived a KB
      mutation because monotonicity or their recorded dependency set
      proved them unaffected;
    * ``resaturation_cone_size`` — saturation inferences re-derived
      incrementally from the dirty frontier after KB additions (the
      affected cone, not a full re-saturation);
    * ``deadline_checks`` — amortised wall-clock reads performed by
      :class:`~repro.dl.budget.BudgetMeter` ticks (far below tick count);
    * ``budget_aborts`` — searches stopped by an exhausted
      :class:`~repro.dl.budget.Budget` (deadline, caps, or cancellation);
    * ``unknown_verdicts`` — structured UNKNOWN answers returned by the
      degrading service APIs instead of raising;
    * ``escalations`` — budget enlargements performed by
      :func:`~repro.dl.budget.retry_with_escalation` retries.
    """

    tableau_runs: int = 0
    branches_explored: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_conflicts: int = 0
    saturation_queries: int = 0
    saturation_fallbacks: int = 0
    subsumption_tests: int = 0
    told_subsumptions: int = 0
    trail_length: int = 0
    backjumps: int = 0
    branch_points_skipped: int = 0
    blocking_checks: int = 0
    explanations_computed: int = 0
    shrink_probes: int = 0
    trace_events: int = 0
    fine_invalidations: int = 0
    cache_entries_survived: int = 0
    resaturation_cone_size: int = 0
    deadline_checks: int = 0
    budget_aborts: int = 0
    unknown_verdicts: int = 0
    escalations: int = 0

    def snapshot(self) -> "ReasonerStats":
        """An independent copy of the current counter values."""
        return ReasonerStats(**self.as_dict())

    def reset(self) -> None:
        """Zero every counter in place."""
        for item in fields(self):
            setattr(self, item.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """The counters as an ordered name -> value mapping."""
        return {item.name: getattr(self, item.name) for item in fields(self)}

    def __sub__(self, earlier: "ReasonerStats") -> "ReasonerStats":
        """The per-counter difference (``later - snapshot`` = work since)."""
        return ReasonerStats(
            **{
                name: value - getattr(earlier, name)
                for name, value in self.as_dict().items()
            }
        )

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups answered from the cache (0.0 if none)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def render(self, verbose: bool = False) -> str:
        """A single-line human-readable summary.

        Every counter is accounted for: it is either printed in its
        group or its group is *named* in a trailing ``zero: ...`` note,
        so a reader can tell "not shown" apart from "not measured".
        ``verbose=True`` prints every group unconditionally (the full
        dump), eliding nothing.

        >>> ReasonerStats(deadline_checks=2).render().split(" | ")[-2]
        'budget: 0 aborts / 0 unknown (escalations: 0, deadline checks: 2)'
        >>> "zero:" in ReasonerStats().render(verbose=True)
        False
        """
        line = (
            f"tableau runs: {self.tableau_runs}"
            f" | branches: {self.branches_explored}"
            f" | cache: {self.cache_hits} hits"
            f" / {self.cache_misses} misses"
            f" ({self.cache_hit_rate:.0%})"
            f" | subsumption tests: {self.subsumption_tests}"
            f" (told: {self.told_subsumptions})"
        )
        groups = (
            (
                "saturation",
                self.saturation_queries or self.saturation_fallbacks,
                f"saturation: {self.saturation_queries} answered"
                f" / {self.saturation_fallbacks} fallbacks",
            ),
            (
                "trail",
                self.trail_length
                or self.backjumps
                or self.branch_points_skipped
                or self.blocking_checks,
                f"trail: {self.trail_length}"
                f" | backjumps: {self.backjumps}"
                f" (skipped {self.branch_points_skipped})"
                f" | blocking checks: {self.blocking_checks}",
            ),
            (
                "evictions",
                self.cache_evictions or self.cache_conflicts,
                f"evictions: {self.cache_evictions}"
                f" (conflicts: {self.cache_conflicts})",
            ),
            (
                "explanations",
                self.explanations_computed or self.shrink_probes,
                f"explanations: {self.explanations_computed}"
                f" (shrink probes: {self.shrink_probes})",
            ),
            (
                "trace events",
                self.trace_events,
                f"trace events: {self.trace_events}",
            ),
            (
                "incremental",
                self.fine_invalidations
                or self.cache_entries_survived
                or self.resaturation_cone_size,
                f"incremental: {self.fine_invalidations} invalidated"
                f" / {self.cache_entries_survived} survived"
                f" (resaturation cone: {self.resaturation_cone_size})",
            ),
            (
                "budget",
                self.budget_aborts
                or self.unknown_verdicts
                or self.escalations
                or self.deadline_checks,
                f"budget: {self.budget_aborts} aborts"
                f" / {self.unknown_verdicts} unknown"
                f" (escalations: {self.escalations},"
                f" deadline checks: {self.deadline_checks})",
            ),
        )
        elided = []
        for label, nonzero, rendered in groups:
            if verbose or nonzero:
                line += f" | {rendered}"
            else:
                elided.append(label)
        if elided:
            line += f" | zero: {', '.join(elided)}"
        return line
