"""A Manchester-flavoured concrete syntax for SHOIN(D) and SHOIN(D)4.

The paper works with abstract syntax only; real ontologies need a
concrete one.  This module provides a tokenizer and recursive-descent
parser for concept expressions and whole knowledge bases, both classical
and four-valued.  Round-tripping with :mod:`repro.dl.printer` is covered
by property tests.

Concept grammar (precedence ``not`` > ``and`` > ``or``)::

    C ::= 'Thing' | 'Nothing' | NAME
        | 'not' C | C 'and' C | C 'or' C | '(' C ')'
        | '{' NAME (',' NAME)* '}'                      nominals
        | ROLE 'some' C | ROLE 'only' C                 quantifiers
        | ROLE 'min' INT | ROLE 'max' INT               number restrictions
        | DROLE 'some' RANGE | DROLE 'only' RANGE
        | DROLE 'min' INT | DROLE 'max' INT
    ROLE ::= NAME | 'inverse' '(' NAME ')'
    RANGE ::= 'integer' | 'string' | 'float' | 'boolean'
            | 'integer' '[' INT? '..' INT? ']'
            | '{' LITERAL (',' LITERAL)* '}'
            | 'not' RANGE | '(' RANGE ')'

Datatype roles must be declared (``dataproperty NAME``) before use so the
parser can resolve the quantifier forms.  KB files are line-based::

    # classical
    class Doctor
    property hasPatient
    dataproperty age
    transitive ancestor
    Doctor subclassof Person
    hasPatient subpropertyof knows
    john : Doctor and not Patient
    hasPatient(john, mary)
    age(john, 42)
    john = johnny
    john != mary

    # four-valued inclusions (parse_kb4 only)
    Penguin < Bird
    Bird and (hasWing some Wing) |-> Fly
    Penguin -> not Fly
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Set, Tuple, Union

from ..four_dl.axioms4 import (
    ConceptInclusion4,
    DatatypeRoleInclusion4,
    InclusionKind,
    KnowledgeBase4,
    RoleInclusion4,
    Transitivity4,
)
from . import axioms as ax
from .concepts import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
)
from .datatypes import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    STRING,
    DataAnd,
    DataOneOf,
    DataOr,
    DataRange,
    IntRange,
)
from .errors import ParseError
from .individuals import DataValue, Individual
from .roles import AtomicRole, DatatypeRole, ObjectRole

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>"[^"]*")
  | (?P<dots>\.\.)
  | (?P<arrow>\|->|->)
  | (?P<symbol>[(){}\[\],:<=!]|!=)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "and",
    "or",
    "not",
    "some",
    "only",
    "min",
    "max",
    "inverse",
    "Thing",
    "Nothing",
}


def tokenize(text: str) -> List[Tuple[str, str, int]]:
    """Split input into ``(kind, value, position)`` tokens."""
    tokens: List[Tuple[str, str, int]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", position
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            tokens.append((kind, value, position))
        position = match.end()
    return tokens


class _TokenStream:
    """A peekable token cursor shared by the concept and KB parsers."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.index += 1
            return True
        return False

    def expect(self, value: str) -> None:
        token = self.peek()
        if token is None or token[1] != value:
            found = token[1] if token else "end of input"
            where = token[2] if token else len(self.text)
            raise ParseError(f"expected {value!r}, found {found!r}", where)
        self.index += 1

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


class ConceptParser:
    """Recursive-descent parser for concept expressions.

    ``datatype_roles`` names the roles to be treated as datatype roles
    when they appear before ``some``/``only``/``min``/``max``.
    """

    def __init__(self, datatype_roles: Iterable[str] = ()):
        self.datatype_roles: Set[str] = set(datatype_roles)

    def parse(self, text: str) -> Concept:
        """Parse a complete concept expression."""
        stream = _TokenStream(text)
        concept = self._or(stream)
        if not stream.at_end():
            token = stream.peek()
            raise ParseError(f"trailing input at {token[1]!r}", token[2])
        return concept

    def parse_stream(self, stream: _TokenStream) -> Concept:
        """Parse a concept from an existing stream (for the KB parser)."""
        return self._or(stream)

    # -- precedence ladder ------------------------------------------------
    def _or(self, stream: _TokenStream) -> Concept:
        operands = [self._and(stream)]
        while stream.accept("or"):
            operands.append(self._and(stream))
        return Or.of(*operands) if len(operands) > 1 else operands[0]

    def _and(self, stream: _TokenStream) -> Concept:
        operands = [self._unary(stream)]
        while stream.accept("and"):
            operands.append(self._unary(stream))
        return And.of(*operands) if len(operands) > 1 else operands[0]

    def _unary(self, stream: _TokenStream) -> Concept:
        if stream.accept("not"):
            return Not(self._unary(stream))
        return self._atom(stream)

    def _atom(self, stream: _TokenStream) -> Concept:
        token = stream.peek()
        if token is None:
            raise ParseError("unexpected end of concept", len(stream.text))
        kind, value, position = token
        if value == "(":
            stream.next()
            inner = self._or(stream)
            stream.expect(")")
            return inner
        if value == "{":
            return self._nominal(stream)
        if value == "Thing":
            stream.next()
            return TOP
        if value == "Nothing":
            stream.next()
            return BOTTOM
        if value == "inverse" or kind == "name":
            return self._name_or_restriction(stream)
        raise ParseError(f"unexpected token {value!r} in concept", position)

    def _nominal(self, stream: _TokenStream) -> Concept:
        stream.expect("{")
        names = [self._name(stream)]
        while stream.accept(","):
            names.append(self._name(stream))
        stream.expect("}")
        return OneOf(frozenset(Individual(n) for n in names))

    def _name(self, stream: _TokenStream) -> str:
        kind, value, position = stream.next()
        if kind != "name" or value in KEYWORDS:
            raise ParseError(f"expected a name, found {value!r}", position)
        return value

    def _name_or_restriction(self, stream: _TokenStream) -> Concept:
        inverse = False
        if stream.accept("inverse"):
            stream.expect("(")
            name = self._name(stream)
            stream.expect(")")
            inverse = True
        else:
            name = self._name(stream)
        follow = stream.peek()
        if follow is not None and follow[1] in ("some", "only", "min", "max"):
            return self._restriction(stream, name, inverse)
        if inverse:
            raise ParseError(
                f"inverse({name}) must be followed by a restriction keyword",
                follow[2] if follow else len(stream.text),
            )
        return AtomicConcept(name)

    def _restriction(
        self, stream: _TokenStream, name: str, inverse: bool
    ) -> Concept:
        _kind, keyword, position = stream.next()
        is_data = name in self.datatype_roles
        if is_data and inverse:
            raise ParseError("datatype roles have no inverses", position)
        if is_data:
            data_role = DatatypeRole(name)
            if keyword == "some":
                return DataExists(data_role, self._data_range(stream))
            if keyword == "only":
                return DataForall(data_role, self._data_range(stream))
            if keyword == "min":
                return DataAtLeast(self._integer(stream), data_role)
            return DataAtMost(self._integer(stream), data_role)
        role: ObjectRole = AtomicRole(name)
        if inverse:
            role = role.inverse()
        if keyword == "some":
            return Exists(role, self._unary(stream))
        if keyword == "only":
            return Forall(role, self._unary(stream))
        count = self._integer(stream)
        if self._filler_follows(stream):
            filler = self._unary(stream)
            if keyword == "min":
                return QualifiedAtLeast(count, role, filler)
            return QualifiedAtMost(count, role, filler)
        if keyword == "min":
            return AtLeast(count, role)
        return AtMost(count, role)

    @staticmethod
    def _filler_follows(stream: _TokenStream) -> bool:
        """Whether a qualified-cardinality filler starts at the cursor.

        After ``role min N`` a concept may follow (qualified form).  The
        tokens that can *continue* the surrounding expression instead —
        ``and``, ``or``, closing brackets, commas, line structure — never
        start a concept, so one token of lookahead decides.
        """
        token = stream.peek()
        if token is None:
            return False
        kind, value, _position = token
        if value in ("not", "inverse", "Thing", "Nothing", "(", "{"):
            return True
        return kind == "name" and value not in KEYWORDS

    def _integer(self, stream: _TokenStream) -> int:
        kind, value, position = stream.next()
        if kind != "number" or "." in value:
            raise ParseError(f"expected an integer, found {value!r}", position)
        return int(value)

    # -- data ranges -------------------------------------------------------
    def _data_range(self, stream: _TokenStream) -> DataRange:
        if stream.accept("not"):
            return self._data_range(stream).negate()
        token = stream.peek()
        if token is None:
            raise ParseError("unexpected end of data range", len(stream.text))
        _kind, value, position = token
        if value == "(":
            stream.next()
            inner = self._data_or_range(stream)
            stream.expect(")")
            return inner
        if value == "{":
            return self._data_one_of(stream)
        if value == "integer":
            stream.next()
            if stream.accept("["):
                minimum = self._optional_integer(stream)
                stream.expect("..")
                maximum = self._optional_integer(stream)
                stream.expect("]")
                return IntRange(minimum, maximum)
            return INTEGER
        if value == "string":
            stream.next()
            return STRING
        if value == "float":
            stream.next()
            return FLOAT
        if value == "boolean":
            stream.next()
            return BOOLEAN
        raise ParseError(f"unexpected token {value!r} in data range", position)

    def _data_or_range(self, stream: _TokenStream) -> DataRange:
        """A Boolean data-range ladder, legal only inside parentheses.

        Top-level data ranges stay unary so a concept-level ``and``/``or``
        after ``role some RANGE`` keeps binding to the *concept* grammar.
        """
        operands = [self._data_and_range(stream)]
        while stream.accept("or"):
            operands.append(self._data_and_range(stream))
        if len(operands) == 1:
            return operands[0]
        return DataOr(tuple(operands))

    def _data_and_range(self, stream: _TokenStream) -> DataRange:
        operands = [self._data_range(stream)]
        while stream.accept("and"):
            operands.append(self._data_range(stream))
        if len(operands) == 1:
            return operands[0]
        return DataAnd(tuple(operands))

    def _optional_integer(self, stream: _TokenStream) -> Optional[int]:
        token = stream.peek()
        if token is not None and token[0] == "number":
            return self._integer(stream)
        return None

    def _data_one_of(self, stream: _TokenStream) -> DataRange:
        stream.expect("{")
        values = [self._literal(stream)]
        while stream.accept(","):
            values.append(self._literal(stream))
        stream.expect("}")
        return DataOneOf(frozenset(values))

    def _literal(self, stream: _TokenStream) -> DataValue:
        kind, value, position = stream.next()
        if kind == "number":
            if "." in value:
                return DataValue("float", value)
            return DataValue("integer", value)
        if kind == "string":
            return DataValue("string", value[1:-1])
        if kind == "name" and value in ("true", "false"):
            return DataValue("boolean", value)
        raise ParseError(f"expected a literal, found {value!r}", position)


def parse_concept(text: str, datatype_roles: Iterable[str] = ()) -> Concept:
    """Parse one concept expression."""
    return ConceptParser(datatype_roles).parse(text)


# ---------------------------------------------------------------------------
# Knowledge base parsing
# ---------------------------------------------------------------------------

_INCLUSION_WORDS = {
    "subclassof": None,  # classical
    "subpropertyof": None,
}


def _strip_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _scan_declarations(lines: List[str]) -> Tuple[Set[str], Set[str], Set[str]]:
    """Collect (datatype, object-property, transitive) declared names."""
    data_roles: Set[str] = set()
    object_roles: Set[str] = set()
    transitive: Set[str] = set()
    for line in lines:
        parts = line.split()
        if len(parts) == 2 and parts[0] == "dataproperty":
            data_roles.add(parts[1])
        elif len(parts) == 2 and parts[0] == "property":
            object_roles.add(parts[1])
        elif len(parts) == 2 and parts[0] == "transitive":
            transitive.add(parts[1])
    return data_roles, object_roles, transitive


def _parse_role(name: str, data_roles: Set[str]):
    if name in data_roles:
        return DatatypeRole(name)
    if name.startswith("inverse(") and name.endswith(")"):
        return AtomicRole(name[len("inverse(") : -1]).inverse()
    return AtomicRole(name)


def parse_kb(text: str) -> "ax.KnowledgeBase":
    """Parse a classical knowledge base from the line-based syntax."""
    from .kb import KnowledgeBase

    kb = KnowledgeBase()
    for axiom in _parse_lines(text, four_valued=False):
        kb.add(axiom)
    return kb


def parse_kb4(text: str) -> KnowledgeBase4:
    """Parse a SHOIN(D)4 knowledge base (``|->``, ``<``, ``->`` inclusions)."""
    kb4 = KnowledgeBase4()
    for axiom in _parse_lines(text, four_valued=True):
        kb4.add(axiom)
    return kb4


def _parse_lines(text: str, four_valued: bool):
    lines = [_strip_comment(line).strip() for line in text.splitlines()]
    lines = [line for line in lines if line]
    data_roles, object_roles, _transitive = _scan_declarations(lines)
    parser = ConceptParser(data_roles)
    for line_number, line in enumerate(lines, start=1):
        try:
            axiom = _parse_line(
                line, parser, data_roles, object_roles, four_valued
            )
        except ParseError as error:
            raise ParseError(
                f"line {line_number}: {error}", position=line_number
            ) from error
        if axiom is not None:
            if isinstance(axiom, list):
                yield from axiom
            else:
                yield axiom


def _parse_line(
    line: str,
    parser: ConceptParser,
    data_roles: Set[str],
    object_roles: Set[str],
    four_valued: bool,
):
    parts = line.split()
    head = parts[0] if parts else ""
    # Declarations.
    if head in ("class", "property", "dataproperty", "individual") and len(parts) == 2:
        return None
    if head == "transitive" and len(parts) == 2:
        if four_valued:
            return Transitivity4(AtomicRole(parts[1]))
        return ax.Transitivity(AtomicRole(parts[1]))
    # Negative role assertion: not name(a, b).
    negative = re.match(
        r"^not\s+([A-Za-z_][\w\-]*)\(\s*([A-Za-z_][\w\-]*)\s*,\s*([A-Za-z_][\w\-]*)\s*\)$",
        line,
    )
    if negative:
        role_name, source, target = negative.groups()
        if role_name in data_roles:
            raise ParseError("negative assertions are for object roles only")
        return ax.NegativeRoleAssertion(
            AtomicRole(role_name), Individual(source), Individual(target)
        )
    # Role assertions: name(a, b) with no spaces before '('.
    assertion = re.match(
        r"^([A-Za-z_][\w\-]*)\(\s*([A-Za-z_][\w\-]*)\s*,\s*([^)]+)\)$", line
    )
    if assertion:
        role_name, source, target = assertion.groups()
        target = target.strip()
        if role_name in data_roles:
            literal = _parse_literal_text(target)
            return ax.DataAssertion(
                DatatypeRole(role_name), Individual(source), literal
            )
        return ax.RoleAssertion(
            AtomicRole(role_name), Individual(source), Individual(target)
        )
    # Equality / inequality.
    inequality = re.match(r"^([\w\-]+)\s*!=\s*([\w\-]+)$", line)
    if inequality:
        return ax.DifferentIndividuals(
            Individual(inequality.group(1)), Individual(inequality.group(2))
        )
    equality = re.match(r"^([\w\-]+)\s*=\s*([\w\-]+)$", line)
    if equality:
        return ax.SameIndividual(
            Individual(equality.group(1)), Individual(equality.group(2))
        )
    # Concept assertion ``a : C``.
    membership = re.match(r"^([A-Za-z_][\w\-]*)\s*:\s*(.+)$", line)
    if membership:
        concept = parser.parse(membership.group(2))
        return ax.ConceptAssertion(Individual(membership.group(1)), concept)
    # Inclusions.
    return _parse_inclusion(line, parser, data_roles, object_roles, four_valued)


def _parse_inclusion(
    line: str,
    parser: ConceptParser,
    data_roles: Set[str],
    object_roles: Set[str],
    four_valued: bool,
):
    equivalence_match = re.split(r"\bequivalentto\b", line)
    if len(equivalence_match) == 2:
        left = parser.parse(equivalence_match[0].strip())
        right = parser.parse(equivalence_match[1].strip())
        if four_valued:
            return [
                ConceptInclusion4(left, right, InclusionKind.INTERNAL),
                ConceptInclusion4(right, left, InclusionKind.INTERNAL),
            ]
        return ax.ConceptEquivalence(left, right)
    classical_match = re.split(r"\bsubclassof\b", line)
    if len(classical_match) == 2:
        sub = parser.parse(classical_match[0].strip())
        sup = parser.parse(classical_match[1].strip())
        if four_valued:
            return ConceptInclusion4(sub, sup, InclusionKind.INTERNAL)
        return ax.ConceptInclusion(sub, sup)
    role_match = re.split(r"\bsubpropertyof\b", line)
    if len(role_match) == 2:
        sub = _parse_role(role_match[0].strip(), data_roles)
        sup = _parse_role(role_match[1].strip(), data_roles)
        if isinstance(sub, DatatypeRole) != isinstance(sup, DatatypeRole):
            raise ParseError("mixed object/datatype role inclusion")
        if four_valued:
            if isinstance(sub, DatatypeRole):
                return DatatypeRoleInclusion4(sub, sup, InclusionKind.INTERNAL)
            return RoleInclusion4(sub, sup, InclusionKind.INTERNAL)
        if isinstance(sub, DatatypeRole):
            return ax.DatatypeRoleInclusion(sub, sup)
        return ax.RoleInclusion(sub, sup)
    if not four_valued:
        raise ParseError(f"cannot parse line: {line!r}")
    # Four-valued inclusion connectives, tried longest-first.
    for symbol, kind in (
        ("|->", InclusionKind.MATERIAL),
        ("->", InclusionKind.STRONG),
        ("<", InclusionKind.INTERNAL),
    ):
        split = _split_top_level(line, symbol)
        if split is not None:
            left, right = split
            role_names = left.strip(), right.strip()
            plain = all(re.fullmatch(r"[\w\-]+", n) for n in role_names)
            if plain and any(n in data_roles for n in role_names):
                sub_d = DatatypeRole(role_names[0])
                sup_d = DatatypeRole(role_names[1])
                return DatatypeRoleInclusion4(sub_d, sup_d, kind)
            if plain and any(n in object_roles for n in role_names):
                return RoleInclusion4(
                    AtomicRole(role_names[0]), AtomicRole(role_names[1]), kind
                )
            sub = parser.parse(left.strip())
            sup = parser.parse(right.strip())
            if isinstance(sub, AtomicConcept) and isinstance(sup, AtomicConcept):
                return ConceptInclusion4(sub, sup, kind)
            return ConceptInclusion4(sub, sup, kind)
    raise ParseError(f"cannot parse line: {line!r}")


def _split_top_level(line: str, symbol: str) -> Optional[Tuple[str, str]]:
    """Split on a connective occurring outside brackets, or return None."""
    depth = 0
    index = 0
    while index < len(line):
        char = line[index]
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        elif depth == 0 and line.startswith(symbol, index):
            # '<' must not be part of '|->' handled earlier; also require
            # spaces around single-char connectives to avoid clashing with
            # names.
            if symbol == "<" and not (
                index > 0 and line[index - 1] == " "
                and index + 1 < len(line) and line[index + 1] == " "
            ):
                index += 1
                continue
            return line[:index], line[index + len(symbol):]
        index += 1
    return None


def _parse_literal_text(text: str) -> DataValue:
    text = text.strip()
    if text.startswith('"') and text.endswith('"'):
        return DataValue("string", text[1:-1])
    if text in ("true", "false"):
        return DataValue("boolean", text)
    if re.fullmatch(r"-?\d+", text):
        return DataValue("integer", text)
    if re.fullmatch(r"-?\d+\.\d+", text):
        return DataValue("float", text)
    raise ParseError(f"cannot parse literal {text!r}")
