"""OWL 2 functional-style syntax emitter and parser (SHOIN(D) fragment).

The paper targets OWL DL; this module connects the library to the
standard exchange syntax: :func:`to_functional` renders a
:class:`~repro.dl.kb.KnowledgeBase` as an OWL functional-syntax document
and :func:`from_functional` parses the same fragment back.  The supported
vocabulary is exactly the SHOIN(D) constructor set of the paper's
Table 1:

``SubClassOf``, ``EquivalentClasses``, ``SubObjectPropertyOf``,
``SubDataPropertyOf``, ``TransitiveObjectProperty``, ``ClassAssertion``,
``ObjectPropertyAssertion``, ``DataPropertyAssertion``,
``SameIndividual``, ``DifferentIndividuals``, ``Declaration``;
class expressions ``ObjectIntersectionOf``, ``ObjectUnionOf``,
``ObjectComplementOf``, ``ObjectOneOf``, ``ObjectSomeValuesFrom``,
``ObjectAllValuesFrom``, ``ObjectMinCardinality``,
``ObjectMaxCardinality``, ``ObjectInverseOf``, the ``Data...``
counterparts, ``DataOneOf``, ``DatatypeRestriction`` (xsd:minInclusive /
xsd:maxInclusive facets on xsd:integer), and ``owl:Thing`` /
``owl:Nothing``.

Entity names use a single default prefix ``:name``; literals are typed
(``"42"^^xsd:integer``).
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple, Union

from . import axioms as ax
from .concepts import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)
from .datatypes import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    STRING,
    DataComplement,
    DataOneOf,
    DataRange,
    Datatype,
    IntRange,
)
from .errors import ParseError, UnsupportedFeature
from .individuals import DataValue, Individual
from .kb import KnowledgeBase
from .roles import AtomicRole, DatatypeRole, ObjectRole

_XSD = {"integer", "string", "float", "boolean"}


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------

def _entity(name: str) -> str:
    return f":{name}"


def _literal(value: DataValue) -> str:
    return f'"{value.lexical}"^^xsd:{value.datatype}'


def _role_term(role: ObjectRole) -> str:
    if role.is_inverse:
        return f"ObjectInverseOf({_entity(role.named.name)})"
    return _entity(role.named.name)


def _range_term(range_: DataRange) -> str:
    if isinstance(range_, Datatype):
        return f"xsd:{range_.name}"
    if isinstance(range_, DataOneOf):
        inner = " ".join(sorted(_literal(v) for v in range_.values))
        return f"DataOneOf({inner})"
    if isinstance(range_, IntRange):
        facets = []
        if range_.minimum is not None:
            facets.append(f'xsd:minInclusive "{range_.minimum}"^^xsd:integer')
        if range_.maximum is not None:
            facets.append(f'xsd:maxInclusive "{range_.maximum}"^^xsd:integer')
        if not facets:
            return "xsd:integer"
        return f"DatatypeRestriction(xsd:integer {' '.join(facets)})"
    if isinstance(range_, DataComplement):
        return f"DataComplementOf({_range_term(range_.operand)})"
    raise UnsupportedFeature(f"no OWL rendering for data range {range_!r}")


def _concept_term(concept: Concept) -> str:
    if isinstance(concept, AtomicConcept):
        return _entity(concept.name)
    if isinstance(concept, Top):
        return "owl:Thing"
    if isinstance(concept, Bottom):
        return "owl:Nothing"
    if isinstance(concept, Not):
        return f"ObjectComplementOf({_concept_term(concept.operand)})"
    if isinstance(concept, And):
        inner = " ".join(_concept_term(c) for c in concept.operands)
        return f"ObjectIntersectionOf({inner})"
    if isinstance(concept, Or):
        inner = " ".join(_concept_term(c) for c in concept.operands)
        return f"ObjectUnionOf({inner})"
    if isinstance(concept, OneOf):
        inner = " ".join(sorted(_entity(i.name) for i in concept.individuals))
        return f"ObjectOneOf({inner})"
    if isinstance(concept, Exists):
        return (
            f"ObjectSomeValuesFrom({_role_term(concept.role)} "
            f"{_concept_term(concept.filler)})"
        )
    if isinstance(concept, Forall):
        return (
            f"ObjectAllValuesFrom({_role_term(concept.role)} "
            f"{_concept_term(concept.filler)})"
        )
    if isinstance(concept, AtLeast):
        return f"ObjectMinCardinality({concept.n} {_role_term(concept.role)})"
    if isinstance(concept, AtMost):
        return f"ObjectMaxCardinality({concept.n} {_role_term(concept.role)})"
    if isinstance(concept, QualifiedAtLeast):
        return (
            f"ObjectMinCardinality({concept.n} {_role_term(concept.role)} "
            f"{_concept_term(concept.filler)})"
        )
    if isinstance(concept, QualifiedAtMost):
        return (
            f"ObjectMaxCardinality({concept.n} {_role_term(concept.role)} "
            f"{_concept_term(concept.filler)})"
        )
    if isinstance(concept, DataExists):
        return (
            f"DataSomeValuesFrom({_entity(concept.role.name)} "
            f"{_range_term(concept.range)})"
        )
    if isinstance(concept, DataForall):
        return (
            f"DataAllValuesFrom({_entity(concept.role.name)} "
            f"{_range_term(concept.range)})"
        )
    if isinstance(concept, DataAtLeast):
        return f"DataMinCardinality({concept.n} {_entity(concept.role.name)})"
    if isinstance(concept, DataAtMost):
        return f"DataMaxCardinality({concept.n} {_entity(concept.role.name)})"
    raise TypeError(f"unknown concept kind: {concept!r}")


def _axiom_term(axiom: ax.Axiom) -> str:
    if isinstance(axiom, ax.ConceptInclusion):
        return f"SubClassOf({_concept_term(axiom.sub)} {_concept_term(axiom.sup)})"
    if isinstance(axiom, ax.ConceptEquivalence):
        return (
            f"EquivalentClasses({_concept_term(axiom.left)} "
            f"{_concept_term(axiom.right)})"
        )
    if isinstance(axiom, ax.RoleInclusion):
        return (
            f"SubObjectPropertyOf({_role_term(axiom.sub)} {_role_term(axiom.sup)})"
        )
    if isinstance(axiom, ax.DatatypeRoleInclusion):
        return (
            f"SubDataPropertyOf({_entity(axiom.sub.name)} "
            f"{_entity(axiom.sup.name)})"
        )
    if isinstance(axiom, ax.Transitivity):
        return f"TransitiveObjectProperty({_entity(axiom.role.name)})"
    if isinstance(axiom, ax.ConceptAssertion):
        return (
            f"ClassAssertion({_concept_term(axiom.concept)} "
            f"{_entity(axiom.individual.name)})"
        )
    if isinstance(axiom, ax.RoleAssertion):
        return (
            f"ObjectPropertyAssertion({_role_term(axiom.role)} "
            f"{_entity(axiom.source.name)} {_entity(axiom.target.name)})"
        )
    if isinstance(axiom, ax.NegativeRoleAssertion):
        return (
            f"NegativeObjectPropertyAssertion({_role_term(axiom.role)} "
            f"{_entity(axiom.source.name)} {_entity(axiom.target.name)})"
        )
    if isinstance(axiom, ax.DataAssertion):
        return (
            f"DataPropertyAssertion({_entity(axiom.role.name)} "
            f"{_entity(axiom.source.name)} {_literal(axiom.value)})"
        )
    if isinstance(axiom, ax.SameIndividual):
        return f"SameIndividual({_entity(axiom.left.name)} {_entity(axiom.right.name)})"
    if isinstance(axiom, ax.DifferentIndividuals):
        return (
            f"DifferentIndividuals({_entity(axiom.left.name)} "
            f"{_entity(axiom.right.name)})"
        )
    raise TypeError(f"unknown axiom kind: {axiom!r}")


def to_functional(kb: KnowledgeBase, iri: str = "http://example.org/onto") -> str:
    """Render a KB as an OWL 2 functional-style document."""
    lines = [
        f"Prefix(:=<{iri}#>)",
        "Prefix(xsd:=<http://www.w3.org/2001/XMLSchema#>)",
        "Prefix(owl:=<http://www.w3.org/2002/07/owl#>)",
        f"Ontology(<{iri}>",
    ]
    for concept in sorted(kb.concepts_in_signature(), key=lambda c: c.name):
        lines.append(f"  Declaration(Class({_entity(concept.name)}))")
    for role in sorted(kb.object_roles_in_signature(), key=lambda r: r.name):
        lines.append(f"  Declaration(ObjectProperty({_entity(role.name)}))")
    for role in sorted(kb.datatype_roles_in_signature(), key=lambda r: r.name):
        lines.append(f"  Declaration(DataProperty({_entity(role.name)}))")
    for individual in sorted(kb.individuals_in_signature()):
        lines.append(
            f"  Declaration(NamedIndividual({_entity(individual.name)}))"
        )
    for axiom in kb.axioms():
        lines.append(f"  {_axiom_term(axiom)}")
    lines.append(")")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_OWL_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<literal>"[^"]*"\^\^xsd:[A-Za-z]+)
  | (?P<lparen>\() | (?P<rparen>\))
  | (?P<term>[A-Za-z][A-Za-z0-9]*(?=\s*\())
  | (?P<name>(:|xsd:|owl:)[A-Za-z_][\w\-]*|owl:Thing|owl:Nothing)
  | (?P<number>\d+)
  | (?P<iri><[^>]*>)
    """,
    re.VERBOSE,
)

_SExpr = Union[str, int, DataValue, List]


def _tokenize_owl(text: str) -> Iterator[Tuple[str, str]]:
    position = 0
    while position < len(text):
        match = _OWL_TOKEN.match(text, position)
        if match is None:
            raise ParseError(f"bad OWL syntax near {text[position:position+20]!r}", position)
        kind = match.lastgroup or ""
        if kind != "ws":
            yield kind, match.group()
        position = match.end()


def _parse_sexprs(text: str) -> List[_SExpr]:
    """Parse the document into nested ``[head, arg, ...]`` lists."""
    stack: List[List[_SExpr]] = [[]]
    pending_head: Optional[str] = None
    for kind, value in _tokenize_owl(text):
        if kind == "term":
            pending_head = value
        elif kind == "lparen":
            new: List[_SExpr] = [pending_head or ""]
            pending_head = None
            stack[-1].append(new)
            stack.append(new)
        elif kind == "rparen":
            if len(stack) == 1:
                raise ParseError("unbalanced parentheses in OWL document")
            stack.pop()
        elif kind == "literal":
            lexical, _, datatype = value.partition("^^xsd:")
            stack[-1].append(DataValue(datatype, lexical[1:-1]))
        elif kind == "number":
            stack[-1].append(int(value))
        elif kind in ("name", "iri"):
            stack[-1].append(value)
    if len(stack) != 1:
        raise ParseError("unbalanced parentheses in OWL document")
    return stack[0]


def _strip(name: object) -> str:
    if not isinstance(name, str) or not name.startswith(":"):
        raise ParseError(f"expected an entity name, found {name!r}")
    return name[1:]


def _parse_role_expr(expr: _SExpr) -> ObjectRole:
    if isinstance(expr, list) and expr[0] == "ObjectInverseOf":
        return AtomicRole(_strip(expr[1])).inverse()
    return AtomicRole(_strip(expr))


def _parse_range_expr(expr: _SExpr) -> DataRange:
    if isinstance(expr, str) and expr.startswith("xsd:"):
        name = expr[4:]
        if name not in _XSD:
            raise UnsupportedFeature(f"unsupported datatype xsd:{name}")
        return {"integer": INTEGER, "string": STRING, "float": FLOAT,
                "boolean": BOOLEAN}[name]
    if isinstance(expr, list):
        head = expr[0]
        if head == "DataOneOf":
            return DataOneOf(frozenset(v for v in expr[1:]))
        if head == "DataComplementOf":
            return _parse_range_expr(expr[1]).negate()
        if head == "DatatypeRestriction":
            minimum = maximum = None
            rest = expr[2:]
            index = 0
            while index < len(rest):
                facet, value = rest[index], rest[index + 1]
                if facet == "xsd:minInclusive":
                    minimum = int(value.lexical)
                elif facet == "xsd:maxInclusive":
                    maximum = int(value.lexical)
                else:
                    raise UnsupportedFeature(f"unsupported facet {facet!r}")
                index += 2
            return IntRange(minimum, maximum)
    raise ParseError(f"cannot parse data range {expr!r}")


def _parse_concept_expr(expr: _SExpr) -> Concept:
    if isinstance(expr, str):
        if expr == "owl:Thing":
            return TOP
        if expr == "owl:Nothing":
            return BOTTOM
        return AtomicConcept(_strip(expr))
    if not isinstance(expr, list):
        raise ParseError(f"cannot parse class expression {expr!r}")
    head = expr[0]
    if head == "ObjectComplementOf":
        return Not(_parse_concept_expr(expr[1]))
    if head == "ObjectIntersectionOf":
        return And.of(*(_parse_concept_expr(e) for e in expr[1:]))
    if head == "ObjectUnionOf":
        return Or.of(*(_parse_concept_expr(e) for e in expr[1:]))
    if head == "ObjectOneOf":
        return OneOf(frozenset(Individual(_strip(e)) for e in expr[1:]))
    if head == "ObjectSomeValuesFrom":
        return Exists(_parse_role_expr(expr[1]), _parse_concept_expr(expr[2]))
    if head == "ObjectAllValuesFrom":
        return Forall(_parse_role_expr(expr[1]), _parse_concept_expr(expr[2]))
    if head == "ObjectMinCardinality":
        if len(expr) == 4:
            return QualifiedAtLeast(
                int(expr[1]), _parse_role_expr(expr[2]), _parse_concept_expr(expr[3])
            )
        return AtLeast(int(expr[1]), _parse_role_expr(expr[2]))
    if head == "ObjectMaxCardinality":
        if len(expr) == 4:
            return QualifiedAtMost(
                int(expr[1]), _parse_role_expr(expr[2]), _parse_concept_expr(expr[3])
            )
        return AtMost(int(expr[1]), _parse_role_expr(expr[2]))
    if head == "DataSomeValuesFrom":
        return DataExists(DatatypeRole(_strip(expr[1])), _parse_range_expr(expr[2]))
    if head == "DataAllValuesFrom":
        return DataForall(DatatypeRole(_strip(expr[1])), _parse_range_expr(expr[2]))
    if head == "DataMinCardinality":
        return DataAtLeast(int(expr[1]), DatatypeRole(_strip(expr[2])))
    if head == "DataMaxCardinality":
        return DataAtMost(int(expr[1]), DatatypeRole(_strip(expr[2])))
    raise UnsupportedFeature(f"unsupported class expression {head!r}")


def from_functional(text: str) -> KnowledgeBase:
    """Parse an OWL functional-syntax document into a KB."""
    kb = KnowledgeBase()
    # Prefix declarations use ':=' which the s-expression grammar does not
    # cover; only the single default prefix is supported, so drop them.
    text = "\n".join(
        line for line in text.splitlines() if not line.startswith("Prefix(")
    )
    top_level = _parse_sexprs(text)
    ontology = next(
        (e for e in top_level if isinstance(e, list) and e[0] == "Ontology"),
        None,
    )
    if ontology is None:
        raise ParseError("no Ontology(...) block found")
    for expr in ontology[1:]:
        if not isinstance(expr, list):
            continue  # the ontology IRI
        head = expr[0]
        if head == "Declaration":
            continue
        if head == "SubClassOf":
            kb.add(
                ax.ConceptInclusion(
                    _parse_concept_expr(expr[1]), _parse_concept_expr(expr[2])
                )
            )
        elif head == "EquivalentClasses":
            kb.add(
                ax.ConceptEquivalence(
                    _parse_concept_expr(expr[1]), _parse_concept_expr(expr[2])
                )
            )
        elif head == "DisjointClasses":
            # Pairwise disjointness: Ci and Cj [= Nothing.
            concepts = [_parse_concept_expr(e) for e in expr[1:]]
            for i, left in enumerate(concepts):
                for right in concepts[i + 1 :]:
                    kb.add(ax.ConceptInclusion(And.of(left, right), BOTTOM))
        elif head == "SubObjectPropertyOf":
            kb.add(
                ax.RoleInclusion(
                    _parse_role_expr(expr[1]), _parse_role_expr(expr[2])
                )
            )
        elif head == "SubDataPropertyOf":
            kb.add(
                ax.DatatypeRoleInclusion(
                    DatatypeRole(_strip(expr[1])), DatatypeRole(_strip(expr[2]))
                )
            )
        elif head == "TransitiveObjectProperty":
            kb.add(ax.Transitivity(AtomicRole(_strip(expr[1]))))
        elif head == "ClassAssertion":
            kb.add(
                ax.ConceptAssertion(
                    Individual(_strip(expr[2])), _parse_concept_expr(expr[1])
                )
            )
        elif head == "ObjectPropertyAssertion":
            kb.add(
                ax.RoleAssertion(
                    _parse_role_expr(expr[1]),
                    Individual(_strip(expr[2])),
                    Individual(_strip(expr[3])),
                )
            )
        elif head == "NegativeObjectPropertyAssertion":
            kb.add(
                ax.NegativeRoleAssertion(
                    _parse_role_expr(expr[1]),
                    Individual(_strip(expr[2])),
                    Individual(_strip(expr[3])),
                )
            )
        elif head == "DataPropertyAssertion":
            kb.add(
                ax.DataAssertion(
                    DatatypeRole(_strip(expr[1])),
                    Individual(_strip(expr[2])),
                    expr[3],
                )
            )
        elif head == "SameIndividual":
            kb.add(
                ax.SameIndividual(
                    Individual(_strip(expr[1])), Individual(_strip(expr[2]))
                )
            )
        elif head == "DifferentIndividuals":
            kb.add(
                ax.DifferentIndividuals(
                    Individual(_strip(expr[1])), Individual(_strip(expr[2]))
                )
            )
        else:
            raise UnsupportedFeature(f"unsupported axiom {head!r}")
    return kb
