"""Command-line interface: audit, query, and transform ontology files.

The ontology file format is the line-based concrete syntax of
:mod:`repro.dl.parser` (four-valued inclusions ``|->``/``<``/``->``
allowed; plain ``subclassof`` reads as internal inclusion).  Commands:

* ``check FILE``      — four-valued satisfiability (and the classical
  verdict of the collapsed ontology for comparison);
* ``query FILE a C``  — the entailed Belnap status of ``C(a)``;
* ``audit FILE``      — full conflict report: localised contradictions,
  inconsistency/information degrees, per-concept breakdown;
* ``classify FILE``   — the atomic concept hierarchy under a chosen
  inclusion strength (internal by default);
* ``transform FILE``  — print the classical induced KB (Definitions 5-7);
* ``export-owl FILE`` — the induced KB as OWL functional syntax, ready
  for any external OWL DL reasoner;
* ``experiments``     — run the paper-reproduction battery;
* ``eval run``        — execute a declarative eval suite into an
  isolated ``eval/results/<run-id>/`` directory (``manifest.json`` +
  ``metrics.jsonl`` + ``SUMMARY.md`` + a ``BENCH_*.json`` trajectory
  record, all schema-validated; see ``docs/EVAL.md``); ``eval list``
  names the suites;
* ``profile FILE``    — phase report over a ``--profile FILE`` span dump
  (``--folded OUT`` renders flamegraph.pl-compatible folded stacks);
* ``serve ...``       — the long-lived reasoning service (admission
  control, worker pool, tracing + request journal; ``docs/GUIDE.md``
  §10);
* ``trace SOURCE``    — render the cross-process span tree of one
  served request, from a ``--capture-dir`` file or straight off a
  running server's ``/trace/<id>`` URL.

``check``, ``query``, ``audit``, and ``classify`` accept ``--stats`` to
print the reasoning-work counters (tableau runs, cache hits, branches,
trail length, backjumps) after the answer, ``--search
{trail,copying}`` to pick the tableau search strategy (trail-based
backjumping by default; ``copying`` is the copy-per-branch reference),
and ``--no-incremental`` to disable fine-grained invalidation after KB
mutations (wholesale cache clearing instead).

``check`` and ``query`` additionally accept ``--explain`` — print a
subset-minimal justification citing the original KB4 axioms, annotated
with their Table 3 inclusion strength — and ``--trace`` to dump the
structured tableau search trace of each probe run (``--trace`` implies
``--explain``).  For a ``query`` answering BOTH, both evidence
directions are justified separately.

``check``, ``query``, ``audit``, ``classify``, and ``repair`` accept
observability flags (see ``docs/OBSERVABILITY.md``): ``--profile``
prints the nested span tree of the run (``--profile FILE`` writes it as
JSON lines instead), and ``--metrics-out FILE`` writes Prometheus-style
text metrics — span-duration histograms plus the reasoning-work
counters.  ``repair`` also accepts ``--stats``.

``check``, ``query``, ``classify``, and ``repair`` accept reasoning
budgets: ``--timeout SECONDS`` (wall-clock deadline), ``--max-nodes N``
and ``--max-branches N``.  A command that cannot decide its question
within the budget prints a one-line ``unknown: ...`` message and exits
with status 3 instead of crashing (``classify`` additionally prints the
partial hierarchy it did decide).

Exit status is 0 on success, 1 when a check fails (inconsistent /
unsatisfiable / query not entailed), 2 on usage or parse errors, and 3
when the answer is UNKNOWN because a reasoning budget was exhausted.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .dl import axioms as ax
from .dl.budget import Budget
from .dl.concepts import AtomicConcept, Not
from .dl.errors import ParseError, ReasonerLimitExceeded, ReproError
from .dl.individuals import Individual
from .dl.parser import ConceptParser, parse_kb4
from .dl.printer import render_axiom
from .dl.owl import to_functional
from .dl.reasoner import Reasoner
from .four_dl.axioms4 import InclusionKind, KnowledgeBase4, collapse_to_classical
from .four_dl.metrics import conflict_profile
from .four_dl.reasoner4 import Reasoner4
from .four_dl.transform import transform_kb
from .fourvalued.truth import FourValue
from .harness.tables import print_table
from .obs import (
    Tracer,
    active_tracer,
    phase_breakdown,
    read_spans_jsonl,
    render_prometheus,
    render_span_tree,
    tracing,
    write_spans_jsonl,
)
from .obs.export import folded_stacks
from .obs.spans import span as obs_span

#: Cap on full --trace output per probe run, to keep terminals usable.
TRACE_LINE_LIMIT = 60

#: Exit status for answers degraded to UNKNOWN by budget exhaustion.
EXIT_UNKNOWN = 3


def _load_kb4(path: str) -> KnowledgeBase4:
    with obs_span("parse") as span:
        span.set("path", path)
        with open(path) as handle:
            kb4 = parse_kb4(handle.read())
        span.set("axioms", len(kb4))
        return kb4


def _watch_stats(stats) -> None:
    """Register ``stats`` with the active tracer, if tracing is on."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.watch_stats(stats)


def _make_reasoner(args: argparse.Namespace, kb4: KnowledgeBase4) -> Reasoner4:
    reasoner = Reasoner4(
        kb4,
        search=getattr(args, "search", "trail"),
        engine=getattr(args, "engine", "auto"),
        incremental=getattr(args, "incremental", True),
    )
    _watch_stats(reasoner.stats)
    return reasoner


def _verdict_word(verdict) -> str:
    """``True`` / ``False`` / ``unknown`` for CLI output."""
    return "unknown" if verdict.is_unknown() else str(bool(verdict))


def _budget_from(args: argparse.Namespace) -> Optional[Budget]:
    """The :class:`~repro.dl.budget.Budget` the flags describe, if any."""
    timeout = getattr(args, "timeout", None)
    max_nodes = getattr(args, "budget_nodes", None)
    max_branches = getattr(args, "budget_branches", None)
    if timeout is None and max_nodes is None and max_branches is None:
        return None
    return Budget(
        deadline=timeout, max_nodes=max_nodes, max_branches=max_branches
    )


def _print_stats(args: argparse.Namespace, reasoner: Reasoner4) -> None:
    if getattr(args, "stats", False):
        print(f"work: {reasoner.stats.render()}")


def _explain_requested(args: argparse.Namespace) -> bool:
    return getattr(args, "explain", False) or getattr(args, "trace", False)


def _print_traces(args: argparse.Namespace, traces) -> None:
    from .explain import render_trace

    if not getattr(args, "trace", False):
        return
    for trace in traces:
        print(render_trace(trace, max_lines=TRACE_LINE_LIMIT))


def _cmd_check(args: argparse.Namespace) -> int:
    kb4 = _load_kb4(args.file)
    budget = _budget_from(args)
    reasoner = _make_reasoner(args, kb4)
    four = reasoner.is_satisfiable_verdict(budget=budget)
    classical_reasoner = Reasoner(
        collapse_to_classical(kb4), search=getattr(args, "search", "trail")
    )
    _watch_stats(classical_reasoner.stats)
    classical = classical_reasoner.consistency_verdict(budget=budget)
    print(f"axioms:                  {len(kb4)}")
    print(f"four-valued satisfiable: {_verdict_word(four)}")
    print(f"classically consistent:  {_verdict_word(classical)}")
    if four.is_unknown() or classical.is_unknown():
        degraded = four if four.is_unknown() else classical
        print(
            f"unknown: satisfiability undecided within budget "
            f"({degraded.reason.value}); retry with a larger budget"
        )
        _print_stats(args, reasoner)
        return EXIT_UNKNOWN
    four_ok = bool(four)
    classical_ok = bool(classical)
    if four_ok and not classical_ok:
        print(
            "the ontology contradicts itself classically but stays "
            "meaningful four-valuedly; run 'audit' to localise the conflicts"
        )
    if _explain_requested(args):
        if not four_ok:
            explanation = reasoner.explain_unsatisfiability(
                trace=getattr(args, "trace", False)
            )
            print()
            print(explanation.render(heading="--- why four-valued unsatisfiable ---"))
            _print_traces(args, explanation.traces)
        elif not classical_ok:
            classical = Reasoner(
                collapse_to_classical(kb4),
                search=getattr(args, "search", "trail"),
            )
            explanation = classical.explain_inconsistency(
                trace=getattr(args, "trace", False)
            )
            print()
            print(
                explanation.render(
                    heading="--- why classically inconsistent (collapsed) ---"
                )
            )
            _print_traces(args, explanation.traces)
        else:
            print("nothing to explain: the ontology is satisfiable both ways")
    _print_stats(args, reasoner)
    return 0 if four_ok else 1


def _cmd_query(args: argparse.Namespace) -> int:
    kb4 = _load_kb4(args.file)
    parser = ConceptParser(
        role.name for role in kb4.datatype_roles_in_signature()
    )
    concept = parser.parse(args.concept)
    individual = Individual(args.individual)
    budget = _budget_from(args)
    reasoner = _make_reasoner(args, kb4)
    bounded = reasoner.assertion_value_bounded(individual, concept, budget=budget)
    if bounded.is_unknown():
        print(
            f"{args.concept}({args.individual}) = unknown  "
            f"(budget exhausted: {bounded.reason.value}; "
            f"retry with a larger budget)"
        )
        _print_stats(args, reasoner)
        return EXIT_UNKNOWN
    value = bounded.value
    explanation = {
        FourValue.TRUE: "evidence for, none against",
        FourValue.FALSE: "evidence against, none for",
        FourValue.BOTH: "contradictory evidence (localised conflict)",
        FourValue.NEITHER: "no entailed evidence either way",
    }[value]
    print(f"{args.concept}({args.individual}) = {value}  ({explanation})")
    if _explain_requested(args):
        directions = []
        if value in (FourValue.TRUE, FourValue.BOTH):
            directions.append(
                ("evidence for", ax.ConceptAssertion(individual, concept))
            )
        if value in (FourValue.FALSE, FourValue.BOTH):
            directions.append(
                ("evidence against", ax.ConceptAssertion(individual, Not(concept)))
            )
        if not directions:
            print("nothing to explain: neither direction is entailed")
        for label, query_axiom in directions:
            result = reasoner.explain(
                query_axiom, trace=getattr(args, "trace", False)
            )
            print()
            print(result.render(heading=f"--- {label} ---"))
            _print_traces(args, result.traces)
    _print_stats(args, reasoner)
    return 0 if value in (FourValue.TRUE, FourValue.BOTH) else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    kb4 = _load_kb4(args.file)
    reasoner = _make_reasoner(args, kb4)
    print(f"axioms: {len(kb4)}")
    print(f"four-valued satisfiable: {reasoner.is_satisfiable()}")
    profile = conflict_profile(reasoner, include_roles=not args.no_roles)
    print(f"inconsistency degree: {profile.inconsistency_degree:.3f}")
    print(f"information degree:   {profile.information_degree:.3f}")
    conflicts = reasoner.contradictory_facts()
    if conflicts:
        rows = [
            (individual.name, ", ".join(sorted(c.name for c in concepts)))
            for individual, concepts in sorted(conflicts.items())
        ]
        print_table(
            ["individual", "contradictory about"], rows, title="\nConflicts:"
        )
    else:
        print("no contradictions entailed")
    if args.full:
        print_table(
            ["fact", "status"], profile.rows(), title="\nFull fact census:"
        )
    _print_stats(args, reasoner)
    return 0 if not conflicts else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    kb4 = _load_kb4(args.file)
    kind = InclusionKind[args.kind.upper()]
    budget = _budget_from(args)
    reasoner = _make_reasoner(args, kb4)
    if budget is None:
        hierarchy = reasoner.classify(kind=kind)
        undecided: tuple = ()
        reason = None
    else:
        partial = reasoner.classify_bounded(kind=kind, budget=budget)
        hierarchy = partial.hierarchy
        undecided = partial.undecided
        reason = partial.reason
    rows = []
    for atom in sorted(hierarchy, key=lambda a: a.name):
        supers = sorted(
            sup.name for sup in hierarchy[atom] if sup != atom
        )
        rows.append((atom.name, ", ".join(supers) if supers else "-"))
    print_table(
        ["concept", f"{args.kind} subsumers"],
        rows,
        title=f"Hierarchy ({args.kind} inclusion):",
    )
    _print_stats(args, reasoner)
    if undecided:
        print(
            f"unknown: {len(undecided)} subsumption pairs undecided within "
            f"budget ({reason.value}); the hierarchy above is partial"
        )
        return EXIT_UNKNOWN
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from .baselines.repair import RepairReasoner
    from .four_dl.axioms4 import collapse_to_classical as collapse

    kb4 = _load_kb4(args.file)
    budget = _budget_from(args)
    repairer = RepairReasoner(
        collapse(kb4), max_subsets=args.max_justifications, budget=budget
    )
    _watch_stats(repairer.stats)

    def finish(status: int) -> int:
        if getattr(args, "stats", False):
            print(f"work: {repairer.stats.render()}")
        return status

    if not repairer.justifications:
        if repairer.degradations:
            print(
                f"unknown: diagnosis undecided within budget "
                f"({repairer.degradations[0].reason.value})"
            )
            return finish(EXIT_UNKNOWN)
        print("the ontology is classically consistent; nothing to repair")
        return finish(0)
    print(f"justifications found: {len(repairer.justifications)}")
    for index, justification in enumerate(repairer.justifications, start=1):
        print(f"  justification {index}:")
        for axiom in sorted(justification, key=repr):
            print(f"    {render_axiom(axiom)}")
    print(f"minimal repairs: {len(repairer.repair_sets)}")
    for index, repair in enumerate(repairer.repair_sets, start=1):
        removed = "; ".join(sorted(render_axiom(axiom) for axiom in repair))
        print(f"  repair {index}: remove {{ {removed} }}")
    if repairer.degradations:
        print(
            f"unknown: {len(repairer.degradations)} diagnosis probes "
            f"undecided within budget; the report above may be incomplete"
        )
        return finish(EXIT_UNKNOWN)
    return finish(1)


def _cmd_transform(args: argparse.Namespace) -> int:
    kb4 = _load_kb4(args.file)
    induced = transform_kb(kb4)
    for axiom in induced.axioms():
        print(render_axiom(axiom))
    return 0


def _cmd_export_owl(args: argparse.Namespace) -> int:
    kb4 = _load_kb4(args.file)
    induced = transform_kb(kb4)
    sys.stdout.write(to_functional(induced, iri=args.iri))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .harness.experiments import ALL_EXPERIMENTS, run_all

    names = args.names or None
    unknown = [n for n in (names or []) if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    results = run_all(names)
    for result in results:
        print(result.render())
        print()
    failures = [r.name for r in results if not r.passed]
    if failures:
        print("FAILED:", ", ".join(failures))
        return 1
    print(f"All {len(results)} experiments reproduce the paper.")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from .eval import ALL_SUITES, EvalRunError, run_suite

    if args.eval_command == "list":
        rows = [
            (name, "yes" if suite.needs_scale else "no", suite.description)
            for name, suite in sorted(ALL_SUITES.items())
        ]
        print_table(["suite", "needs --scale", "description"], rows)
        return 0
    print(f"running suite {args.suite!r} (seed {args.seed}) ...")
    try:
        result = run_suite(
            args.suite,
            out_root=args.out,
            seed=args.seed,
            repeats=args.repeats,
            scale=args.scale,
            only=args.only or None,
            echo=print,
        )
    except EvalRunError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"run directory: {result.directory}")
    print(
        f"wrote manifest.json, metrics.jsonl ({len(result.metrics)} probes), "
        f"SUMMARY.md, {result.bench_path.name} (all schema-validated)"
    )
    if result.unknown_probes:
        print(
            f"note: {len(result.unknown_probes)} probe(s) degraded to "
            f"unknown within budget: {', '.join(result.unknown_probes)}"
        )
    if result.failed_probes:
        print(
            f"FAILED probes: {', '.join(result.failed_probes)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    with open(args.spanfile) as handle:
        try:
            roots = read_spans_jsonl(handle.read())
        except ValueError as error:
            print(f"error: {args.spanfile}: {error}", file=sys.stderr)
            return 2
    if not roots:
        print("no spans in file", file=sys.stderr)
        return 2
    rows = [
        (
            name,
            count,
            f"{total:.4f}",
            f"{p50:.4f}",
            f"{p95:.4f}",
            f"{peak:.4f}",
            share,
        )
        for name, count, total, p50, p95, peak, share in phase_breakdown(roots)
    ]
    print_table(
        ["span", "count", "total s", "p50 s", "p95 s", "max s", "share"],
        rows,
        title=f"Profile of {args.spanfile}:",
    )
    if args.tree:
        print()
        print(render_span_tree(roots))
    if args.folded:
        with open(args.folded, "w") as handle:
            handle.write(folded_stacks(roots))
        print(f"wrote folded stacks to {args.folded}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    source = args.source
    if source.startswith(("http://", "https://")):
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(source, timeout=10.0) as raw:
                text = raw.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as error:
            print(f"error: {source}: {error}", file=sys.stderr)
            return 2
    else:
        with open(source) as handle:
            text = handle.read()
    try:
        roots = read_spans_jsonl(text)
    except ValueError as error:
        print(f"error: {source}: {error}", file=sys.stderr)
        return 2
    if not roots:
        print("no spans in trace", file=sys.stderr)
        return 2
    trace_ids = sorted(
        {span.trace_id for root in roots for span in root.walk() if span.trace_id}
    )
    processes = sorted(
        {span.process for root in roots for span in root.walk() if span.process}
    )
    total = sum(1 for root in roots for _ in root.walk())
    print(f"trace: {', '.join(trace_ids) if trace_ids else '(untagged)'}")
    print(
        f"spans: {total} across {len(roots)} root(s); "
        f"processes: {', '.join(processes) if processes else '(untagged)'}"
    )
    print()
    print(render_span_tree(roots), end="")
    if args.folded:
        with open(args.folded, "w") as handle:
            handle.write(folded_stacks(roots))
        print(f"wrote folded stacks to {args.folded}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .serve.server import ReproServer

    kb_paths = {}
    for spec in args.kbs:
        if "=" in spec:
            name, _, path = spec.partition("=")
        else:
            path = spec
            name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        if not name or not path:
            print(f"error: bad --kb spec {spec!r} (NAME=PATH)", file=sys.stderr)
            return 2
        if name in kb_paths:
            print(f"error: duplicate kb name {name!r}", file=sys.stderr)
            return 2
        kb_paths[name] = path
    for name, path in kb_paths.items():
        try:
            with open(path):
                pass
        except OSError as error:
            print(f"error: kb {name!r}: {error}", file=sys.stderr)
            return 2
    server = ReproServer(
        kb_paths,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        drain_timeout=args.drain_timeout,
        chaos=args.chaos,
        quiet=not args.verbose,
        tracing_enabled=args.serve_tracing,
        trace_capacity=args.trace_capacity,
        journal_capacity=args.journal_capacity,
        journal_path=args.journal,
        capture_dir=args.capture_dir,
        slow_trace_ms=args.slow_ms,
    )

    def drain(signum, frame):  # noqa: ARG001 - signal signature
        # The handler must return immediately (it runs on the main
        # thread, which is inside serve_forever); drain elsewhere.
        threading.Thread(
            target=server.shutdown_gracefully, daemon=True
        ).start()

    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    server.start()
    host, port = server.address
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"({len(kb_paths)} kb(s), {args.workers} worker(s), "
        f"queue {args.max_queue})",
        file=sys.stderr,
        flush=True,
    )
    server.serve_forever()
    print("repro serve: drained and stopped", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Paraconsistent OWL DL reasoning with SHOIN(D)4",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats_help = "print reasoning-work counters after the answer"
    search_help = (
        "tableau search strategy: trail-based with backjumping (default) "
        "or the copy-per-branch reference implementation"
    )
    engine_help = (
        "reasoning engine dispatch: auto tries the polynomial saturation "
        "fast path before the tableau (default); tableau disables it"
    )
    incremental_help = (
        "disable fine-grained invalidation after KB mutations (every "
        "edit then clears the whole query cache and rebuilds all "
        "derived structures wholesale)"
    )

    explain_help = (
        "print a minimal justification citing the original KB4 axioms, "
        "annotated with their Table 3 inclusion strength"
    )
    trace_help = (
        "also dump the structured tableau search trace of each probe run "
        "(implies --explain)"
    )

    def add_reasoning_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--stats", action="store_true", help=stats_help)
        subparser.add_argument(
            "--search",
            choices=["trail", "copying"],
            default="trail",
            help=search_help,
        )
        subparser.add_argument(
            "--engine",
            choices=["auto", "tableau"],
            default="auto",
            help=engine_help,
        )
        subparser.add_argument(
            "--no-incremental",
            dest="incremental",
            action="store_false",
            default=True,
            help=incremental_help,
        )

    def add_explain_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--explain", action="store_true", help=explain_help
        )
        subparser.add_argument(
            "--trace", action="store_true", help=trace_help
        )

    def add_obs_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--profile",
            nargs="?",
            const="",
            metavar="FILE",
            help="trace the run as nested spans; bare --profile prints the "
            "span tree, --profile FILE writes machine-readable JSON lines "
            "(one span per line; see docs/OBSERVABILITY.md)",
        )
        subparser.add_argument(
            "--metrics-out",
            dest="metrics_out",
            metavar="FILE",
            help="write Prometheus-style text metrics (span-duration "
            "histograms and reasoner work counters) after the run",
        )

    def add_budget_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--timeout",
            type=float,
            metavar="SECONDS",
            help="wall-clock reasoning deadline; exceeding it answers "
            "unknown (exit status 3) instead of crashing",
        )
        subparser.add_argument(
            "--max-nodes",
            type=int,
            dest="budget_nodes",
            metavar="N",
            help="cap completion-graph nodes per tableau run",
        )
        subparser.add_argument(
            "--max-branches",
            type=int,
            dest="budget_branches",
            metavar="N",
            help="cap total branches explored while answering",
        )

    check = commands.add_parser("check", help="satisfiability check")
    check.add_argument("file", help="ontology file (concrete syntax)")
    add_reasoning_flags(check)
    add_explain_flags(check)
    add_budget_flags(check)
    add_obs_flags(check)
    check.set_defaults(handler=_cmd_check)

    query = commands.add_parser("query", help="Belnap status of C(a)")
    query.add_argument("file")
    query.add_argument("individual", help="individual name")
    query.add_argument("concept", help="concept expression")
    add_reasoning_flags(query)
    add_explain_flags(query)
    add_budget_flags(query)
    add_obs_flags(query)
    query.set_defaults(handler=_cmd_query)

    audit = commands.add_parser("audit", help="conflict report and degrees")
    audit.add_argument("file")
    audit.add_argument(
        "--full", action="store_true", help="print the full fact census"
    )
    audit.add_argument(
        "--no-roles", action="store_true", help="skip role-atom statuses"
    )
    add_reasoning_flags(audit)
    add_obs_flags(audit)
    audit.set_defaults(handler=_cmd_audit)

    classify = commands.add_parser(
        "classify", help="atomic concept hierarchy"
    )
    classify.add_argument("file")
    classify.add_argument(
        "--kind",
        choices=["material", "internal", "strong"],
        default="internal",
        help="inclusion strength (default: internal)",
    )
    add_reasoning_flags(classify)
    add_budget_flags(classify)
    add_obs_flags(classify)
    classify.set_defaults(handler=_cmd_classify)

    repair = commands.add_parser(
        "repair", help="diagnose: justifications + minimal repairs"
    )
    repair.add_argument("file")
    repair.add_argument(
        "--max-justifications", type=int, default=10, dest="max_justifications"
    )
    repair.add_argument("--stats", action="store_true", help=stats_help)
    add_budget_flags(repair)
    add_obs_flags(repair)
    repair.set_defaults(handler=_cmd_repair)

    transform = commands.add_parser(
        "transform", help="print the classical induced KB"
    )
    transform.add_argument("file")
    transform.set_defaults(handler=_cmd_transform)

    export = commands.add_parser(
        "export-owl", help="induced KB as OWL functional syntax"
    )
    export.add_argument("file")
    export.add_argument(
        "--iri", default="http://example.org/onto", help="ontology IRI"
    )
    export.set_defaults(handler=_cmd_export_owl)

    experiments = commands.add_parser(
        "experiments", help="run the paper-reproduction battery"
    )
    experiments.add_argument("names", nargs="*", help="subset to run")
    experiments.set_defaults(handler=_cmd_experiments)

    eval_parser = commands.add_parser(
        "eval", help="scale-proof eval runs (manifests + metrics + summary)"
    )
    eval_commands = eval_parser.add_subparsers(
        dest="eval_command", required=True
    )
    eval_run = eval_commands.add_parser(
        "run", help="execute a suite into an isolated run directory"
    )
    eval_run.add_argument(
        "--suite",
        required=True,
        help="suite name (see 'repro eval list')",
    )
    eval_run.add_argument(
        "--out",
        default="eval/results",
        help="parent directory for run directories (default: eval/results)",
    )
    eval_run.add_argument(
        "--seed", type=int, default=0, help="corpus seed (default: 0)"
    )
    eval_run.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="override every probe's repeat count",
    )
    eval_run.add_argument(
        "--scale",
        action="store_true",
        help="allow 10^4+-axiom suites (scaling_large)",
    )
    eval_run.add_argument(
        "--only",
        nargs="*",
        metavar="PROBE",
        help="restrict the run to the named probes",
    )
    eval_run.set_defaults(handler=_cmd_eval)
    eval_list = eval_commands.add_parser(
        "list", help="list the available suites"
    )
    eval_list.set_defaults(handler=_cmd_eval)

    serve = commands.add_parser(
        "serve",
        help="long-lived reasoning service over HTTP (see docs/GUIDE.md §10)",
    )
    serve.add_argument(
        "kbs",
        nargs="+",
        metavar="NAME=FILE",
        help="ontology to serve, named (plain FILE uses the file stem)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8455, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="reasoning worker processes (0 = inline, no crash isolation)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        dest="max_queue",
        help="admission bound: requests queued or running at once "
        "(beyond it the server sheds load with 429 + Retry-After)",
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=30_000.0,
        dest="default_deadline_ms",
        help="deadline applied to requests that carry none",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        dest="drain_timeout",
        help="seconds SIGTERM waits for in-flight requests before "
        "cancelling them",
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="arm the debug_crash/debug_stall probe kinds "
        "(fault-injection testing only; never in production)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="append the structured request journal (one JSON line per "
        "request) to FILE in addition to the in-memory ring",
    )
    serve.add_argument(
        "--no-trace",
        dest="serve_tracing",
        action="store_false",
        default=True,
        help="disable per-request tracing (no span collection, no "
        "GET /trace/<id>; the journal still records every request)",
    )
    serve.add_argument(
        "--capture-dir",
        dest="capture_dir",
        metavar="DIR",
        default=None,
        help="write the full span forest of slow-or-UNKNOWN requests to "
        "DIR/<trace_id>.jsonl (render with 'repro trace')",
    )
    serve.add_argument(
        "--slow-ms",
        dest="slow_ms",
        type=float,
        default=1000.0,
        metavar="MS",
        help="latency threshold for the --capture-dir policy "
        "(default: 1000)",
    )
    serve.add_argument(
        "--trace-capacity",
        dest="trace_capacity",
        type=int,
        default=256,
        metavar="N",
        help="traces kept in memory for GET /trace/<id> (default: 256)",
    )
    serve.add_argument(
        "--journal-capacity",
        dest="journal_capacity",
        type=int,
        default=1024,
        metavar="N",
        help="journal entries kept in the in-memory ring (default: 1024)",
    )
    serve.set_defaults(handler=_cmd_serve)

    trace_cmd = commands.add_parser(
        "trace",
        help="render a served request's span forest (file or /trace URL)",
    )
    trace_cmd.add_argument(
        "source",
        help="span JSONL: a --capture-dir file, a --profile dump, or an "
        "http(s) URL such as http://HOST:PORT/trace/<id>",
    )
    trace_cmd.add_argument(
        "--folded",
        metavar="FILE",
        help="write flamegraph.pl-compatible folded stacks",
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    profile = commands.add_parser(
        "profile", help="report on a --profile FILE span dump"
    )
    profile.add_argument("spanfile", help="JSON-lines span dump to analyse")
    profile.add_argument(
        "--tree", action="store_true", help="also print the full span tree"
    )
    profile.add_argument(
        "--folded",
        metavar="FILE",
        help="write flamegraph.pl-compatible folded stacks",
    )
    profile.set_defaults(handler=_cmd_profile)
    return parser


def _export_observability(args: argparse.Namespace, tracer: Tracer) -> None:
    """Emit the requested span / metrics artefacts after a traced run."""
    profile = getattr(args, "profile", None)
    if profile == "":
        print()
        print(render_span_tree(tracer.roots), end="")
        rows = [
            (name, count, f"{total:.4f}", f"{p95:.4f}", share)
            for name, count, total, _, p95, _, share in phase_breakdown(
                tracer.roots
            )
        ]
        print_table(
            ["span", "count", "total s", "p95 s", "share"],
            rows,
            title="\nPhase breakdown:",
        )
    elif profile:
        count = write_spans_jsonl(tracer.roots, profile)
        print(f"wrote {count} spans to {profile}", file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        with open(metrics_out, "w") as handle:
            handle.write(
                render_prometheus(
                    tracer.registry, counters=tracer.counter_totals()
                )
            )
        print(f"wrote metrics to {metrics_out}", file=sys.stderr)


def _run_handler(args: argparse.Namespace) -> int:
    """Dispatch to the subcommand, traced when observability flags ask."""
    wants_tracing = (
        getattr(args, "profile", None) is not None
        or getattr(args, "metrics_out", None) is not None
    )
    if not wants_tracing:
        return args.handler(args)
    tracer = Tracer()
    try:
        with tracing(tracer), obs_span(args.command) as root:
            status = args.handler(args)
            root.set("exit_status", status)
        return status
    finally:
        _export_observability(args, tracer)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    except ReasonerLimitExceeded as error:
        print(f"unknown: {error}", file=sys.stderr)
        return EXIT_UNKNOWN
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
