"""Observability: span tracing, metric histograms, machine-readable export.

The measurement substrate of the reasoning stack.  Three layers:

* :mod:`repro.obs.spans` — nested named spans with wall-clock duration,
  attributes, point events (budget aborts, UNKNOWN degradations), and
  attached :class:`~repro.dl.stats.ReasonerStats` deltas.  Disabled by
  default with an allocation-free null path, so the uninstrumented hot
  path costs nothing measurable and drifts no counters;
* :mod:`repro.obs.metrics` — fixed log-scale-bucket timing histograms
  (p50/p95/max) and gauges, aggregated per span name by the tracer;
* :mod:`repro.obs.export` — JSON-lines span dumps (round-trippable),
  Prometheus-style text metrics, ``flamegraph.pl``-compatible folded
  stacks, and the human span-tree / phase-breakdown renderings behind
  ``repro ... --profile`` and ``repro profile``.

Typical use::

    from repro.obs import Tracer, tracing, render_span_tree

    tracer = Tracer()
    with tracing(tracer):
        reasoner.classify()
    print(render_span_tree(tracer.roots))

See ``docs/OBSERVABILITY.md`` for the span and metric name schema.
"""

from .bench import (
    BENCH_OUT_ENV,
    BenchRecord,
    maybe_write_bench_record,
    write_bench_record,
)
from .export import (
    PHASE_SPANS,
    SPAN_SCHEMA_VERSION,
    folded_stacks,
    phase_breakdown,
    phase_durations,
    read_spans_jsonl,
    render_prometheus,
    render_span_tree,
    spans_from_records,
    spans_to_jsonl,
    spans_to_records,
    validate_span_record,
    write_spans_jsonl,
)
from .metrics import Gauge, Histogram, MetricsRegistry, percentile
from .spans import (
    Span,
    SpanEvent,
    Tracer,
    active_tracer,
    add_event,
    set_gauge,
    span,
    tracing,
)
from .trace import (
    fit_within,
    graft_spans,
    new_trace_id,
    rebase_spans,
    sanitize_trace_id,
)

__all__ = [
    "BENCH_OUT_ENV",
    "BenchRecord",
    "maybe_write_bench_record",
    "write_bench_record",
    "PHASE_SPANS",
    "SPAN_SCHEMA_VERSION",
    "folded_stacks",
    "phase_breakdown",
    "phase_durations",
    "read_spans_jsonl",
    "render_prometheus",
    "render_span_tree",
    "spans_from_records",
    "spans_to_jsonl",
    "spans_to_records",
    "validate_span_record",
    "write_spans_jsonl",
    "fit_within",
    "graft_spans",
    "new_trace_id",
    "rebase_spans",
    "sanitize_trace_id",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "Span",
    "SpanEvent",
    "Tracer",
    "active_tracer",
    "add_event",
    "set_gauge",
    "span",
    "tracing",
]
