"""Cross-process trace propagation: ids, clock rebasing, span grafting.

The service's distributed-tracing substrate.  A *trace* is the full
span forest of one request, stitched together from up to two processes:

* the **server** records the request-plane spans (``serve_request`` →
  ``admission`` / ``dispatch``) under a per-request
  :class:`~repro.obs.spans.Tracer` carrying the trace id;
* the **worker** that executed the probe records the reasoner spans
  (``probe_execute`` → ``cache_probe`` / ``saturation_run`` /
  ``tableau_run`` ...) under its own per-request tracer and ships the
  finished forest back over the result queue as schema-1 records plus
  its tracer epoch.

Every tracer stamps its spans with perf_counter offsets relative to its
own epoch, so the two forests disagree about what "time zero" means.
:func:`rebase_spans` shifts the worker forest onto the server clock
(``offset = worker_epoch - server_epoch`` — on Linux ``perf_counter``
is CLOCK_MONOTONIC, which forked children share, so the offset is
exact), and :func:`fit_within` then *clamps* the shifted spans into the
server-side ``dispatch`` window, guaranteeing children land inside
their parents even when the clocks are skewed (a resumed container, a
test injecting deliberate skew).  :func:`graft_spans` composes the two
into the single-tree contract ``GET /trace/<id>`` serves.
"""

from __future__ import annotations

import re
import uuid
from typing import Dict, List, Optional, Sequence

from .export import spans_from_records
from .spans import Span

__all__ = [
    "new_trace_id",
    "sanitize_trace_id",
    "rebase_spans",
    "fit_within",
    "graft_spans",
]

#: Trace ids are path- and header-safe by construction; ids offered by
#: clients must match this (or be replaced) before keying files/URLs.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    return uuid.uuid4().hex


def sanitize_trace_id(value: object) -> Optional[str]:
    """``value`` if it is a usable trace id, else ``None``.

    Client-supplied ids key trace-store entries, capture filenames and
    ``/trace/<id>`` URLs, so anything unprintable, oversized, or
    path-traversal-shaped is rejected (the caller then mints a fresh
    id rather than failing the request).
    """
    if isinstance(value, str) and _TRACE_ID_RE.match(value):
        return value
    return None


def rebase_spans(roots: Sequence[Span], offset: float) -> None:
    """Shift every span's ``start`` by ``offset`` seconds, in place.

    Used to move a forest recorded against one tracer epoch onto
    another tracer's clock (event offsets are relative to their span's
    start and need no adjustment).
    """
    if not offset:
        return
    for root in roots:
        for span in root.walk():
            span.start += offset


def fit_within(roots: Sequence[Span], lo: float, hi: float) -> int:
    """Clamp a span forest into the window ``[lo, hi]``, in place.

    Normalises a rebased forest so that every root lies inside the
    window and every child lies inside its parent — the invariant the
    tree renderers and flamegraph exporters rely on.  With honest
    clocks this is a no-op; under skew it trims rather than rejects
    (an approximately-placed span beats a dropped one).  Returns the
    number of spans whose timing was adjusted.
    """
    if hi < lo:
        hi = lo
    adjusted = 0

    def clamp(span: Span, lo: float, hi: float) -> None:
        nonlocal adjusted
        start = span.start
        duration = max(span.duration, 0.0)
        width = min(duration, hi - lo)
        new_start = min(max(start, lo), hi - width)
        if new_start != start or width != span.duration:
            adjusted += 1
        span.start = new_start
        span.duration = width
        for child in span.children:
            clamp(child, new_start, new_start + width)

    for root in roots:
        clamp(root, lo, hi)
    return adjusted


def graft_spans(parent: Span, shipment: Dict, host_epoch: float) -> List[Span]:
    """Attach a worker's shipped span forest under a host-side span.

    ``shipment`` is the worker's wire blob: ``{"epoch": <worker
    perf_counter epoch>, "spans": [<schema-1 records>]}``.  The records
    are validated and reassembled (:func:`spans_from_records`), rebased
    onto the host clock, clamped into ``parent``'s window, and appended
    to ``parent.children``.  Returns the grafted roots; raises
    ``ValueError`` for malformed records (the caller decides whether a
    bad trace fails the request — it never should).
    """
    records = shipment.get("spans") or []
    roots = spans_from_records(records)
    if not roots:
        return []
    epoch = shipment.get("epoch")
    if isinstance(epoch, (int, float)):
        rebase_spans(roots, float(epoch) - host_epoch)
    fit_within(roots, parent.start, parent.start + parent.duration)
    parent.children.extend(roots)
    return roots
