"""Metric primitives: log-scale timing histograms and gauges.

The observability layer adds two aggregate metric kinds on top of the
monotone counters :class:`~repro.dl.stats.ReasonerStats` already
provides:

* :class:`Histogram` — a fixed-bucket log-scale duration histogram with
  exact ``count`` / ``sum`` / ``max`` and interpolated quantiles
  (``p50`` / ``p95``).  Fixed buckets keep observation O(log buckets)
  with zero allocation, so enabled tracing stays cheap;
* :class:`Gauge` — a last-value-wins instantaneous reading (e.g. the
  query-cache entry count).

A :class:`MetricsRegistry` owns named instances of both and is what the
Prometheus-style exporter (:func:`repro.obs.export.render_prometheus`)
serialises.  The metric *names* are a stable schema documented in
``docs/OBSERVABILITY.md``.

:func:`percentile` is the one exact-quantile implementation shared by
the whole codebase (``harness.timing.Timer`` reuses it for its ``p95``).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "percentile",
    "Histogram",
    "Gauge",
    "MetricsRegistry",
    "SPAN_DURATION_METRIC",
]

#: The histogram family recording per-span-name durations.
SPAN_DURATION_METRIC = "repro_span_duration_seconds"

#: Fixed log-scale bucket upper bounds, in seconds: powers of two from
#: ~1 microsecond (2**-20) to ~17 minutes (2**10).  Durations above the
#: last bound land in the implicit +Inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 11))


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` by linear interpolation.

    ``q`` is a fraction in ``[0, 1]``; an empty sample list yields 0.0.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
    >>> percentile([5.0], 0.95)
    5.0
    >>> percentile([], 0.5)
    0.0
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q!r}")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class Histogram:
    """A fixed-bucket log-scale histogram of observed values.

    Buckets are cumulative-upper-bound style (Prometheus ``le``
    semantics): ``counts[i]`` holds the number of observations with
    ``value <= bounds[i]``... stored non-cumulatively internally and
    cumulated on export.  ``quantile`` interpolates linearly inside the
    bucket that crosses the requested rank, which is exact enough for
    phase breakdowns; ``max`` (and ``min``) are tracked exactly.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0  # observations above the last bound (+Inf bucket)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        if value < 0.0:
            value = 0.0
        index = bisect.bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The interpolated ``q``-quantile of the observations (0 if empty).

        The estimate is clamped into the exactly-tracked ``[min, max]``
        envelope: linear interpolation inside a log-scale bucket can
        otherwise undershoot the smallest observation (the bucket's
        lower bound may sit far below it) or overshoot the largest, and
        a reported quantile outside the observed range is a lie.

        >>> h = Histogram("t")
        >>> for v in (0.001, 0.002, 0.004, 0.1): h.observe(v)
        >>> 0.001 <= h.quantile(0.5) <= 0.01
        True
        >>> h.quantile(0.0) == h.min and h.quantile(1.0) == h.max
        True
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = self.bounds[index]
                fraction = (rank - seen) / bucket_count
                estimate = low + (high - low) * fraction
                return min(max(estimate, self.min), self.max)
            seen += bucket_count
        return self.max

    @property
    def p50(self) -> float:
        """The interpolated median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """The interpolated 95th percentile."""
        return self.quantile(0.95)

    @property
    def mean(self) -> float:
        """The exact arithmetic mean (0.0 if empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        The final pair uses ``math.inf`` and equals :attr:`count`.
        """
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((math.inf, running + self.overflow))
        return pairs


class Gauge:
    """A last-value-wins instantaneous metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        """Replace the reading."""
        self.value = value


class MetricsRegistry:
    """Named histograms and gauges for one profiled activity.

    Span-duration histograms live in one labelled family
    (:data:`SPAN_DURATION_METRIC`, label ``span``); free-form histograms
    and gauges are registered by bare name.  All lookups create on first
    use, so instrumentation never needs registration boilerplate.
    """

    def __init__(self) -> None:
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, Gauge] = {}
        #: span name -> duration histogram (the labelled family).
        self.span_durations: Dict[str, Histogram] = {}

    def histogram(self, name: str) -> Histogram:
        """The named free-form histogram, created on first use."""
        found = self.histograms.get(name)
        if found is None:
            found = self.histograms[name] = Histogram(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        found = self.gauges.get(name)
        if found is None:
            found = self.gauges[name] = Gauge(name)
        return found

    def span_duration(self, span_name: str) -> Histogram:
        """The duration histogram of one span name, created on first use."""
        found = self.span_durations.get(span_name)
        if found is None:
            found = self.span_durations[span_name] = Histogram(
                SPAN_DURATION_METRIC
            )
        return found
