"""``BENCH_*.json`` run records: machine-readable benchmark results.

The benchmark suite's timing assertions protect against regressions but
leave no data behind — this module gives every benchmark a one-call way
to persist what it measured, in a stable JSON shape the perf trajectory
can be reconstructed from:

.. code-block:: json

    {
      "schema": 1,
      "name": "university_classify",
      "workload": "classify ontologies/university.kb4 (internal)",
      "seconds": {"count": 3, "total": ..., "mean": ..., "p50": ...,
                   "p95": ..., "max": ...},
      "counters": {"tableau_runs": ..., "branches_explored": ...},
      "metadata": {"python": "3.12.1", ...}
    }

Records are written as ``BENCH_<name>.json`` into the directory named by
the ``REPRO_BENCH_OUT`` environment variable; when the variable is
unset, :func:`maybe_write_bench_record` is a no-op, so the default test
run stays write-free.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from .metrics import percentile

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_OUT_ENV",
    "BenchRecord",
    "write_bench_record",
    "maybe_write_bench_record",
]

BENCH_SCHEMA_VERSION = 1

#: Environment variable naming the output directory for BENCH records.
BENCH_OUT_ENV = "REPRO_BENCH_OUT"


@dataclass
class BenchRecord:
    """One benchmark run: what was measured, how long it took, what work.

    ``seconds`` holds raw wall-clock samples (one per repeat); the
    summary statistics are derived on serialisation so records stay
    consistent however they were collected.  ``counters`` is typically
    ``stats.as_dict()`` of the run's :class:`~repro.dl.stats.ReasonerStats`.
    """

    name: str
    workload: str
    seconds: Sequence[float] = ()
    counters: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        """The JSON-able record (the ``BENCH_*.json`` shape)."""
        samples = list(self.seconds)
        metadata = {
            "python": platform.python_version(),
            "machine": platform.machine(),
        }
        metadata.update(self.metadata)
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "name": self.name,
            "workload": self.workload,
            "seconds": {
                "count": len(samples),
                "total": sum(samples),
                "mean": sum(samples) / len(samples) if samples else 0.0,
                "p50": percentile(samples, 0.5),
                "p95": percentile(samples, 0.95),
                "max": max(samples) if samples else 0.0,
            },
            "counters": dict(self.counters),
            "metadata": metadata,
        }

    @property
    def filename(self) -> str:
        """The canonical ``BENCH_<name>.json`` file name."""
        safe = "".join(
            ch if ch.isalnum() or ch in "-_" else "_" for ch in self.name
        )
        return f"BENCH_{safe}.json"


def write_bench_record(record: BenchRecord, directory: str) -> str:
    """Write ``record`` into ``directory``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, record.filename)
    with open(path, "w") as handle:
        json.dump(record.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def maybe_write_bench_record(record: BenchRecord) -> Optional[str]:
    """Write the record iff ``REPRO_BENCH_OUT`` names a directory.

    The benchmark suite calls this unconditionally; without the
    environment variable the call is a no-op returning ``None``, so
    plain test runs never touch the filesystem.
    """
    directory = os.environ.get(BENCH_OUT_ENV)
    if not directory:
        return None
    return write_bench_record(record, directory)
