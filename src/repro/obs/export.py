"""Machine-readable exporters for spans and metrics.

Three output formats, all plain text:

* **JSON lines** — one JSON object per span (depth-first, parents
  before children), linked by ``id``/``parent`` fields.  The schema is
  stable (see :data:`SPAN_FIELDS`; ``scripts/check_span_schema.py``
  validates dumps in CI) and :func:`read_spans_jsonl` reconstructs the
  exact span forest, so dumps round-trip;
* **Prometheus text format** — histograms (cumulative ``_bucket`` /
  ``_sum`` / ``_count`` series), gauges, and the reasoner's monotone
  counters as ``repro_<counter>_total``;
* **folded stacks** — ``root;child;leaf <microseconds>`` lines keyed by
  span *self time*, the input format of Brendan Gregg's
  ``flamegraph.pl`` (``flamegraph.pl out.folded > flame.svg``).

Plus two human renderings used by the CLI: an indented span tree and an
aggregated per-phase breakdown table.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, percentile
from .spans import Span, SpanEvent, Tracer

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "SPAN_FIELDS",
    "SPAN_OPTIONAL_FIELDS",
    "PHASE_SPANS",
    "span_to_dict",
    "spans_to_jsonl",
    "spans_to_records",
    "spans_from_records",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "validate_span_record",
    "folded_stacks",
    "render_prometheus",
    "render_span_tree",
    "phase_breakdown",
    "phase_durations",
]

#: Bumped whenever a field is added/renamed; exported in every line.
SPAN_SCHEMA_VERSION = 1

#: Required fields of one JSON-lines span record and their types.
SPAN_FIELDS = {
    "schema": int,
    "id": int,
    "parent": (int, type(None)),
    "name": str,
    "start": (int, float),
    "duration": (int, float),
    "attributes": dict,
    "events": list,
    "stats": (dict, type(None)),
}

#: Optional fields of the distributed-tracing extension: emitted only
#: when set (so pre-existing dumps — and local, non-service tracing —
#: stay byte-identical), validated when present.  ``trace_id`` is the
#: cross-process correlation id, ``process`` the label of the process
#: that recorded the span (``server``, ``worker-0``, ...).
SPAN_OPTIONAL_FIELDS = {
    "trace_id": str,
    "process": str,
}

#: The canonical pipeline phases (every name the built-in
#: instrumentation emits below the per-command root span).
PHASE_SPANS = frozenset(
    {
        "parse",
        "transform",
        "incremental_update",
        "cache_probe",
        "saturation_run",
        "tableau_run",
        "justify",
        "shrink_probe",
        "evidence_probe",
        "classify",
        "serve_request",
        "probe_execute",
    }
)


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------

def span_to_dict(span: Span, span_id: int, parent_id: Optional[int]) -> Dict:
    """The JSON-able record of one span (children serialised separately)."""
    record: Dict = {
        "schema": SPAN_SCHEMA_VERSION,
        "id": span_id,
        "parent": parent_id,
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "attributes": dict(span.attributes),
        "events": [
            {"name": event.name, "at": event.at, "attributes": dict(event.attributes)}
            for event in span.events
        ],
        "stats": dict(span.stats_delta) if span.stats_delta is not None else None,
    }
    if span.trace_id is not None:
        record["trace_id"] = span.trace_id
    if span.process is not None:
        record["process"] = span.process
    return record


def spans_to_records(roots: Sequence[Span]) -> List[Dict]:
    """The whole span forest as records (parents before children).

    The dict form of :func:`spans_to_jsonl`, used when the forest rides
    an in-process channel (the worker result queue) instead of a file.
    """
    records: List[Dict] = []

    def emit(span: Span, parent_id: Optional[int]) -> None:
        span_id = len(records)
        records.append(span_to_dict(span, span_id, parent_id))
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    return records


def spans_to_jsonl(roots: Sequence[Span]) -> str:
    """The whole span forest as JSON lines (parents before children)."""
    lines = [
        json.dumps(record, sort_keys=True) for record in spans_to_records(roots)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(roots: Sequence[Span], path: str) -> int:
    """Write the forest to ``path``; returns the number of spans written."""
    text = spans_to_jsonl(roots)
    with open(path, "w") as handle:
        handle.write(text)
    return text.count("\n")


def _span_from_record(record: Dict, tracer: Tracer) -> Span:
    """One validated record rebuilt as a :class:`Span` (children detached)."""
    span = Span(tracer, record["name"])
    span.start = float(record["start"])
    span.duration = float(record["duration"])
    span.attributes = dict(record["attributes"])
    span.events = [
        SpanEvent(e["name"], e["at"], dict(e.get("attributes") or {}))
        for e in record["events"]
    ]
    span.stats_delta = (
        dict(record["stats"]) if record["stats"] is not None else None
    )
    span.trace_id = record.get("trace_id")
    span.process = record.get("process")
    return span


def _link_record_span(
    record: Dict,
    span: Span,
    by_id: Dict[int, Span],
    roots: List[Span],
    where: str,
) -> None:
    by_id[record["id"]] = span
    parent_id = record["parent"]
    if parent_id is None:
        roots.append(span)
    else:
        parent = by_id.get(parent_id)
        if parent is None:
            raise ValueError(f"{where}: parent {parent_id} not seen yet")
        parent.children.append(span)


def spans_from_records(records: Sequence[Dict]) -> List[Span]:
    """Reconstruct a span forest from parsed record dicts.

    The in-memory sibling of :func:`read_spans_jsonl` (same validation,
    same parents-before-children contract), used by the server-side
    trace collector to reassemble forests shipped over the worker
    result queue.  Raises ``ValueError`` on malformed records.
    """
    tracer = Tracer()  # donor for Span construction; epoch unused
    by_id: Dict[int, Span] = {}
    roots: List[Span] = []
    for index, record in enumerate(records):
        problems = validate_span_record(record)
        if problems:
            raise ValueError(f"record {index}: {'; '.join(problems)}")
        span = _span_from_record(record, tracer)
        _link_record_span(record, span, by_id, roots, f"record {index}")
    return roots


def read_spans_jsonl(text: str) -> List[Span]:
    """Reconstruct the span forest from a JSON-lines dump.

    The inverse of :func:`spans_to_jsonl`: names, timings, attributes,
    events, stats deltas, trace ids/process labels, and the
    parent/child structure all round-trip.  Raises ``ValueError`` on
    malformed input.
    """
    tracer = Tracer()  # donor for Span construction; epoch unused
    by_id: Dict[int, Span] = {}
    roots: List[Span] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {line_number}: not JSON ({error})") from None
        problems = validate_span_record(record)
        if problems:
            raise ValueError(f"line {line_number}: {'; '.join(problems)}")
        span = _span_from_record(record, tracer)
        _link_record_span(record, span, by_id, roots, f"line {line_number}")
    return roots


def validate_span_record(record: object) -> List[str]:
    """Schema problems of one parsed JSON-lines record (empty = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    for field, expected in SPAN_FIELDS.items():
        if field not in record:
            problems.append(f"missing field {field!r}")
        elif not isinstance(record[field], expected):
            problems.append(
                f"field {field!r} has type {type(record[field]).__name__}"
            )
    for field, expected in SPAN_OPTIONAL_FIELDS.items():
        if field in record and not isinstance(record[field], expected):
            problems.append(
                f"field {field!r} has type {type(record[field]).__name__}"
            )
    if isinstance(record.get("events"), list):
        for index, event in enumerate(record["events"]):
            if not isinstance(event, dict) or not {
                "name",
                "at",
            } <= set(event):
                problems.append(f"event #{index} malformed")
    if isinstance(record.get("duration"), (int, float)):
        if record["duration"] < 0:
            problems.append("negative duration")
    if record.get("schema") not in (None, SPAN_SCHEMA_VERSION):
        problems.append(f"unknown schema version {record.get('schema')!r}")
    return problems


# ---------------------------------------------------------------------------
# Folded stacks (flamegraph.pl input)
# ---------------------------------------------------------------------------

def _frame(name: str) -> str:
    """A span name made safe for the folded-stack format."""
    return name.replace(";", ":").replace(" ", "_") or "anonymous"


def folded_stacks(roots: Sequence[Span]) -> str:
    """The span forest as ``flamegraph.pl``-compatible folded stacks.

    One line per span: the semicolon-joined path from its root, then a
    space, then the span's *self time* in integer microseconds (so the
    values of a stack and its children sum to the root's total, the
    invariant flame graphs rely on).  Zero-self-time spans still emit a
    line with value 0 only when they have no children (so leaf phases
    never vanish); interior zero frames are implied by their children.
    """
    lines: List[str] = []

    def emit(span: Span, prefix: str) -> None:
        path = f"{prefix};{_frame(span.name)}" if prefix else _frame(span.name)
        micros = int(round(span.self_time * 1e6))
        if micros > 0 or not span.children:
            lines.append(f"{path} {micros}")
        for child in span.children:
            emit(child, path)

    for root in roots:
        emit(root, "")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry,
    counters: Optional[Dict[str, int]] = None,
) -> str:
    """The registry (and optional counter totals) in Prometheus text format.

    Emits the labelled span-duration histogram family, free-form
    histograms, gauges, and — when ``counters`` is given (usually
    :meth:`repro.obs.spans.Tracer.counter_totals`) — one
    ``repro_<counter>_total`` series per reasoner counter.
    """
    lines: List[str] = []

    def histogram_lines(name: str, labels: str, histogram) -> None:
        for bound, cumulative in histogram.cumulative_buckets():
            le = _format_value(bound)
            sep = "," if labels else ""
            lines.append(
                f'{name}_bucket{{{labels}{sep}le="{le}"}} {cumulative}'
            )
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}_sum{suffix} {_format_value(histogram.sum)}")
        lines.append(f"{name}_count{suffix} {histogram.count}")

    if registry.span_durations:
        name = "repro_span_duration_seconds"
        lines.append(f"# HELP {name} Wall-clock duration of reasoning spans.")
        lines.append(f"# TYPE {name} histogram")
        for span_name in sorted(registry.span_durations):
            histogram_lines(
                name,
                f'span="{span_name}"',
                registry.span_durations[span_name],
            )
    for hist_name in sorted(registry.histograms):
        lines.append(f"# HELP {hist_name} Observed values.")
        lines.append(f"# TYPE {hist_name} histogram")
        histogram_lines(hist_name, "", registry.histograms[hist_name])
    for gauge_name in sorted(registry.gauges):
        lines.append(f"# HELP {gauge_name} Instantaneous reading.")
        lines.append(f"# TYPE {gauge_name} gauge")
        lines.append(
            f"{gauge_name} {_format_value(registry.gauges[gauge_name].value)}"
        )
    if counters:
        for counter_name in sorted(counters):
            metric = f"repro_{counter_name}_total"
            lines.append(
                f"# HELP {metric} Monotone ReasonerStats counter "
                f"{counter_name}."
            )
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counters[counter_name]}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Human renderings
# ---------------------------------------------------------------------------

def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_span_tree(roots: Sequence[Span], max_depth: int = 12) -> str:
    """An indented, human-readable rendering of the span forest."""
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        parts = [f"{indent}{span.name}  {_format_seconds(span.duration)}"]
        if span.process is not None:
            parts.append(f"<{span.process}>")
        if span.attributes:
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            parts.append(f"[{attrs}]")
        if span.stats_delta:
            busiest = sorted(
                span.stats_delta.items(), key=lambda kv: -abs(kv[1])
            )[:4]
            parts.append(
                "{" + ", ".join(f"{k}+{v}" for k, v in busiest) + "}"
            )
        lines.append("  ".join(parts))
        for event in span.events:
            lines.append(
                f"{indent}  ! {event.name} @{_format_seconds(event.at)}"
                + (f" {event.attributes}" if event.attributes else "")
            )
        if depth + 1 < max_depth:
            for child in span.children:
                emit(child, depth + 1)
        elif span.children:
            lines.append(f"{indent}  ... ({len(span.children)} children elided)")

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def phase_durations(roots: Sequence[Span]) -> Dict[str, float]:
    """Total seconds per pipeline phase, attributed exclusively.

    A span counts toward its phase only when no *ancestor* is also a
    phase span (so a ``tableau_run`` nested inside a ``shrink_probe``
    is attributed to the shrink probe, never twice).  The values of the
    returned mapping therefore sum to at most the root durations.
    """
    totals: Dict[str, float] = {}

    def walk(span: Span, inside_phase: bool) -> None:
        is_phase = span.name in PHASE_SPANS and not inside_phase
        if is_phase:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        for child in span.children:
            walk(child, inside_phase or is_phase)

    for root in roots:
        walk(root, False)
    return totals


def phase_breakdown(
    roots: Sequence[Span],
) -> List[Tuple[str, int, float, float, float, float, str]]:
    """Aggregate rows for the ``repro profile`` table.

    One row per span name: ``(name, count, total_s, p50_s, p95_s,
    max_s, share)`` where ``share`` is the phase's exclusively-attributed
    time as a percentage of the total root duration (blank for spans
    that only ever appear nested inside another phase).
    """
    samples: Dict[str, List[float]] = {}
    for root in roots:
        for span in root.walk():
            samples.setdefault(span.name, []).append(span.duration)
    exclusive = phase_durations(roots)
    total = sum(root.duration for root in roots) or 1.0
    rows = []
    for name in sorted(samples, key=lambda n: -sum(samples[n])):
        values = samples[name]
        share = (
            f"{100.0 * exclusive[name] / total:.1f}%" if name in exclusive else ""
        )
        rows.append(
            (
                name,
                len(values),
                sum(values),
                percentile(values, 0.5),
                percentile(values, 0.95),
                max(values),
                share,
            )
        )
    return rows
