"""Low-overhead span tracing for the reasoning pipeline.

A *span* is one named, timed phase of work (``query``, ``transform``,
``cache_probe``, ``tableau_run``, ``justify``, ``shrink_probe``, ...).
Spans nest: the tracer keeps an open-span stack, so a tableau run started
while answering a query becomes a child of the query span, and the
finished trees expose exactly where the wall-clock time of a service
call went.  Each span can carry

* **attributes** — small key/value annotations (search strategy, cache
  hit, verdict);
* **events** — point-in-time marks (budget aborts, UNKNOWN degradations,
  cache evictions), stamped with their offset from the span start;
* a **stats delta** — the :class:`~repro.dl.stats.ReasonerStats`
  counters incremented while the span was open, when the instrumentation
  site passed its stats object in.

Tracing is **off by default** and the disabled path is allocation-free:
:func:`span` returns one shared no-op singleton, so the hot reasoning
loop pays a global read, a ``None`` check, and two empty method calls
per instrumented site — no objects, no clock reads, no counter drift
(the stats-guard benchmark pins this).  Install a :class:`Tracer` with
:func:`tracing` to record::

    from repro.obs import Tracer, tracing

    tracer = Tracer()
    with tracing(tracer):
        reasoner.assertion_value(individual, concept)
    for root in tracer.roots:
        print(root.name, root.duration)

The span *names* used by the built-in instrumentation points are a
stable schema, documented in ``docs/OBSERVABILITY.md`` and validated by
``scripts/check_span_schema.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "tracing",
    "active_tracer",
    "span",
    "add_event",
    "set_gauge",
]


class SpanEvent:
    """A point-in-time mark inside a span (e.g. a budget abort).

    ``at`` is the offset in seconds from the owning span's start.
    """

    __slots__ = ("name", "at", "attributes")

    def __init__(self, name: str, at: float, attributes: Optional[Dict] = None):
        self.name = name
        self.at = at
        self.attributes = attributes or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<event {self.name} @{self.at:.6f}s {self.attributes}>"


class Span:
    """One named, timed phase of work in a span tree.

    Spans are context managers handed out by a :class:`Tracer` (user
    code normally goes through the module-level :func:`span` helper).
    ``start`` is the offset from the tracer's epoch, ``duration`` the
    wall-clock seconds the span was open, ``stats_delta`` the non-zero
    :class:`~repro.dl.stats.ReasonerStats` counter increments observed
    while it ran (``None`` when no stats object was attached).
    """

    __slots__ = (
        "name",
        "start",
        "duration",
        "attributes",
        "events",
        "children",
        "stats_delta",
        "trace_id",
        "process",
        "_tracer",
        "_stats",
        "_stats_before",
    )

    def __init__(self, tracer: "Tracer", name: str, stats=None):
        self.name = name
        self.start = 0.0
        self.duration = 0.0
        self.attributes: Dict[str, Any] = {}
        self.events: List[SpanEvent] = []
        self.children: List["Span"] = []
        self.stats_delta: Optional[Dict[str, int]] = None
        #: Distributed-trace correlation id, inherited from the tracer
        #: (``None`` outside a traced service request).
        self.trace_id: Optional[str] = tracer.trace_id
        #: Which process recorded this span (``server``, ``worker-0``,
        #: ...), inherited from the tracer; ``None`` for local tracing.
        self.process: Optional[str] = tracer.process
        self._tracer = tracer
        self._stats = stats
        self._stats_before: Optional[Dict[str, int]] = None

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start = time.perf_counter() - tracer.epoch
        if self._stats is not None:
            tracer.watch_stats(self._stats)
            self._stats_before = self._stats.as_dict()
        tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        self.duration = (time.perf_counter() - tracer.epoch) - self.start
        if self._stats_before is not None:
            after = self._stats.as_dict()
            before = self._stats_before
            self.stats_delta = {
                name: after[name] - before[name]
                for name in after
                if after[name] != before[name]
            }
        if exc is not None:
            # A budget abort carries a DegradationReason in .reason; any
            # other exception is recorded generically.  Duck-typed so
            # this module never imports the reasoner's error types.
            reason = getattr(exc, "reason", None)
            if reason is not None and hasattr(reason, "value"):
                self.event("budget_abort", {"reason": reason.value})
            else:
                self.event("exception", {"type": type(exc).__name__})
        tracer._pop(self)

    # -- annotation ------------------------------------------------------
    def set(self, key: str, value) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def event(self, name: str, attributes: Optional[Dict] = None) -> None:
        """Record a point-in-time event at the current offset."""
        at = (time.perf_counter() - self._tracer.epoch) - self.start
        self.events.append(SpanEvent(name, max(at, 0.0), attributes))

    # -- queries ---------------------------------------------------------
    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(self.duration - sum(c.duration for c in self.children), 0.0)

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<span {self.name} {self.duration:.6f}s>"


class _NullSpan:
    """The shared no-op span of the disabled tracing path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, key: str, value) -> None:
        return None

    def event(self, name: str, attributes: Optional[Dict] = None) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveState(threading.local):
    """Per-thread active-tracer slot (``None`` = tracing disabled).

    Thread-local rather than a module global so concurrent server
    threads (the :class:`http.server.ThreadingHTTPServer` request
    plane) can each install a per-request tracer without corrupting
    one another's open-span stacks.  Single-threaded callers (the CLI,
    benchmarks) behave exactly as before.
    """

    tracer: Optional["Tracer"] = None


_ACTIVE = _ActiveState()


class Tracer:
    """Records a forest of span trees plus span-duration metrics.

    One tracer covers one profiled activity (a CLI command, a benchmark
    run).  Finished top-level spans accumulate in :attr:`roots`; every
    span close also feeds the duration histogram of the tracer's
    :class:`~repro.obs.metrics.MetricsRegistry` (one histogram per span
    name) so the same run yields both the tree view and the aggregate
    view.  Distinct :class:`~repro.dl.stats.ReasonerStats` objects seen
    by instrumented spans are remembered (by identity) so counter totals
    can be exported without double counting nested spans.
    """

    def __init__(
        self,
        registry=None,
        trace_id: Optional[str] = None,
        process: Optional[str] = None,
    ):
        from .metrics import MetricsRegistry

        #: perf_counter value all span offsets are relative to.
        self.epoch = time.perf_counter()
        #: Distributed-trace id stamped onto every span (``None`` for
        #: plain local tracing).
        self.trace_id = trace_id
        #: Label of the recording process (``server``, ``worker-1``...).
        self.process = process
        #: Finished top-level spans, in completion order.
        self.roots: List[Span] = []
        #: Aggregated metrics (span-duration histograms, gauges).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stack: List[Span] = []
        self._watched: Dict[int, Any] = {}

    # -- span lifecycle (called by Span) --------------------------------
    def span(self, name: str, stats=None) -> Span:
        """A new unstarted span (start it with ``with``)."""
        return Span(self, name, stats=stats)

    def _push(self, span_: Span) -> None:
        self._stack.append(span_)

    def _pop(self, span_: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span_:
            stack.pop()
        elif span_ in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(span_)
        if stack:
            stack[-1].children.append(span_)
        else:
            self.roots.append(span_)
        self.registry.span_duration(span_.name).observe(span_.duration)

    # -- stats bookkeeping ----------------------------------------------
    def watch_stats(self, stats) -> None:
        """Remember a stats object (by identity) for counter export."""
        self._watched.setdefault(id(stats), stats)

    @property
    def watched_stats(self) -> List[Any]:
        """Every distinct stats object seen by instrumented spans."""
        return list(self._watched.values())

    def counter_totals(self) -> Dict[str, int]:
        """Summed final counters across all watched stats objects.

        Summing *final values of distinct objects* (rather than span
        deltas) is what makes the export double-count-proof: nested
        spans observing the same stats object contribute it once.
        """
        totals: Dict[str, int] = {}
        for stats in self._watched.values():
            for name, value in stats.as_dict().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    # -- convenience -----------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None


class tracing:
    """Context manager installing ``tracer`` as the active tracer.

    Re-entrant: the previous tracer (usually ``None``) is restored on
    exit.  ``tracing(None)`` explicitly disables tracing for a scope.
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        self._previous = _ACTIVE.tracer
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE.tracer = self._previous


def active_tracer() -> Optional[Tracer]:
    """The tracer installed on this thread, or ``None`` (disabled)."""
    return _ACTIVE.tracer


def span(name: str, stats=None):
    """A context-managed span under the active tracer.

    The instrumentation entry point: cheap enough for hot paths because
    the disabled case returns a shared no-op singleton without touching
    the clock or allocating.

    >>> with span("tableau_run") as sp:
    ...     sp.set("search", "trail")   # no-op: tracing disabled
    """
    tracer = _ACTIVE.tracer
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, stats=stats)


def add_event(name: str, attributes: Optional[Dict] = None) -> None:
    """Record an event on the innermost open span, if tracing is active."""
    tracer = _ACTIVE.tracer
    if tracer is None:
        return
    current = tracer.current
    if current is not None:
        current.event(name, attributes)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer's registry, if tracing is active."""
    tracer = _ACTIVE.tracer
    if tracer is None:
        return
    tracer.registry.gauge(name).set(value)
