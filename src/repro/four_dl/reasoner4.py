"""Paraconsistent reasoning for SHOIN(D)4 by reduction (Theorem 6, Cor. 7).

A :class:`Reasoner4` transforms its KB4 once into the classical induced KB
(Definition 7) and then answers every four-valued question through the
classical tableau:

* four-valued satisfiability = classical satisfiability of the induced KB
  (Theorem 6);
* evidence queries — the paper's "is there information indicating that
  ``a`` is (not) a ``C``?" — via classical instance checks on the
  positive/negative transformed concepts;
* the three inclusion forms via Corollary 7's unsatisfiability tests;
* :meth:`Reasoner4.assertion_value` combines both evidence directions
  into one of Belnap's four values, the *entailed* truth status of a fact.

Because the reduction never collapses ``A+`` with ``A-``, a contradiction
about ``A`` stays local: the induced KB remains classically satisfiable
and unrelated conclusions survive (the paraconsistency the paper's
Examples 1-3 demonstrate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..dl import axioms as ax
from ..dl.budget import Budget, Verdict
from ..dl.cache import QueryCache
from ..dl.concepts import And, AtomicConcept, Concept, Not
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import PartialClassification, Reasoner
from ..dl.stats import ReasonerStats
from ..dl.tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES
from ..fourvalued.truth import FourValue, from_evidence
from ..obs.spans import add_event, span as obs_span
from .axioms4 import (
    ConceptInclusion4,
    InclusionKind,
    KnowledgeBase4,
    RoleInclusion4,
)
from ..dl.errors import (
    BudgetExceeded,
    DegradationReason,
    ParseError,
    UnsupportedAxiomError,
    UnsupportedFeature,
)
from .transform import (
    cached_transform_kb,
    neg_transform,
    pos_transform,
    positive_concept,
    positive_data_role,
    positive_role,
    eq_role,
)


@dataclass(frozen=True)
class BoundedFourValue:
    """The possibly-degraded outcome of a budgeted Belnap-status query.

    ``value`` is one of the four truth values when both evidence
    directions were decided within budget, or ``None`` with ``reason``
    (a :class:`~repro.dl.errors.DegradationReason`) when the search was
    stopped.  Degradation is sound: a decided value always equals what
    the unbudgeted :meth:`Reasoner4.assertion_value` would return.
    """

    value: Optional[FourValue]
    reason: Optional[DegradationReason] = None
    message: str = ""

    def is_unknown(self) -> bool:
        """Whether the query degraded instead of deciding."""
        return self.value is None

    def __str__(self) -> str:
        if self.value is None:
            return f"UNKNOWN({self.reason.value})"
        return self.value.name


class Reasoner4:
    """Four-valued reasoner over a SHOIN(D)4 knowledge base.

    The induced classical KB is transformed at most once per KB4 state
    (shared by all reasoner views of the same KB4), and every reduced
    query flows through the classical reasoner's NNF-keyed
    :class:`~repro.dl.cache.QueryCache` — the four-valued layer inherits
    cross-query caching for free because Corollary 7 phrases all its
    services as classical satisfiability.  Mutating the KB4 after queries
    is safe: the reasoner notices the version change, re-transforms, and
    drops every cached verdict.
    """

    def __init__(
        self,
        kb4: KnowledgeBase4,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        cache: Optional[QueryCache] = None,
        use_cache: bool = True,
        stats: Optional[ReasonerStats] = None,
        search: str = "trail",
        cache_maxsize: Optional[int] = 4096,
        budget: Optional[Budget] = None,
        engine: str = "auto",
        incremental: bool = True,
    ):
        """Bind a four-valued reasoner to ``kb4``.

        All parameters mirror :class:`repro.dl.reasoner.Reasoner` and
        are forwarded to the classical reasoner over the induced KB:
        search-space budgets, a shareable query cache (or
        ``use_cache=False`` / ``cache_maxsize`` for a private one),
        shared statistics, the tableau ``search`` strategy, a default
        :class:`~repro.dl.budget.Budget` governing every service call,
        the ``engine`` dispatch policy (the doubled-signature
        reduction preserves the tractable fragment, so the saturation
        fast path applies to induced KBs too), and ``incremental``
        (fine-grained invalidation after KB4 mutations; ``False``
        restores wholesale re-transform plus cache clearing).
        """
        self.kb4 = kb4
        self.max_nodes = max_nodes
        self.max_branches = max_branches
        #: Default resource envelope, forwarded to the classical reasoner.
        self.budget = budget
        #: Tableau search mode, forwarded to the classical reasoner:
        #: ``"trail"`` (backjumping, default) or ``"copying"`` (oracle).
        self.search = search
        #: Engine dispatch policy, forwarded to the classical reasoner:
        #: ``"auto"`` (saturation fast path first) or ``"tableau"``.
        self.engine = engine
        #: Work counters, preserved across mutation-triggered rebuilds.
        self.stats = stats if stats is not None else ReasonerStats()
        self.cache = (
            cache
            if cache is not None
            else QueryCache(enabled=use_cache, maxsize=cache_maxsize)
        )
        #: Whether KB4 mutations flow through fine-grained invalidation
        #: (incremental re-transform + dependency-indexed cache survival)
        #: instead of wholesale rebuilds.
        self.incremental = incremental
        self._kb4_version = kb4.version
        self._rebuild()

    def _rebuild(self) -> None:
        #: The classical induced KB of Definition 7 (memoised per version).
        self.classical_kb: KnowledgeBase = cached_transform_kb(self.kb4)
        #: The classical reasoner all queries reduce to.
        self.classical_reasoner = Reasoner(
            self.classical_kb,
            max_nodes=self.max_nodes,
            max_branches=self.max_branches,
            cache=self.cache,
            stats=self.stats,
            search=self.search,
            budget=self.budget,
            engine=self.engine,
            incremental=self.incremental,
        )

    def _sync(self) -> None:
        """Absorb any KB4 mutation before delegating a query.

        The incremental path: :func:`~repro.four_dl.transform.cached_transform_kb`
        replays the KB4's net axiom delta onto the memoised induced KB
        *in place*, so the induced-KB object survives and the delegated
        classical reasoner — whose own fine-grained ``_sync`` watches
        that object's change log — invalidates only what the edit can
        affect.  When the transform memo could not be updated in place
        (log window exceeded, or ``incremental=False``) the induced KB
        is a fresh object and everything is rebuilt wholesale, exactly
        as before.
        """
        if self._kb4_version == self.kb4.version:
            return
        if self.incremental and cached_transform_kb(self.kb4) is self.classical_kb:
            # Same induced-KB object, mutated in place: the classical
            # reasoner's next query fine-syncs against its change log.
            self._kb4_version = self.kb4.version
            return
        self.cache.clear()
        self._rebuild()
        self._kb4_version = self.kb4.version

    # ------------------------------------------------------------------
    # Satisfiability (Theorem 6)
    # ------------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Four-valued satisfiability of the KB4.

        By Theorem 6 this equals classical satisfiability of the induced
        KB.  Plain contradictions (``A(a)`` with ``not A(a)``) never make
        a KB4 four-valued-unsatisfiable; genuine clashes (e.g. an
        individual asserted into ``Bottom``) still can.
        """
        self._sync()
        return self.classical_reasoner.is_consistent()

    def concept_coherent(self, concept: Concept) -> bool:
        """Whether some four-valued model gives the concept positive evidence."""
        self._sync()
        return self.classical_reasoner.is_satisfiable(pos_transform(concept))

    def four_model(self):
        """A verified finite four-valued model of the KB4, or ``None``.

        Definition 9 in action: extract a classical model of the induced
        KB from the tableau's completion graph and map it back through
        the four-valued induced interpretation.  The result is checked
        against the KB4 with the Table 2/3 evaluator before returning.
        """
        from ..semantics.four_interpretation import FourInterpretation
        from .induced import four_induced

        self._sync()
        classical_model = self.classical_reasoner.model()
        if classical_model is None:
            return None
        data_values = {
            value
            for pairs in classical_model.data_role_ext.values()
            for (_element, value) in pairs
        }
        candidate = four_induced(classical_model, self.kb4, data_values)
        if not candidate.is_model(self.kb4):
            return None
        return candidate

    # ------------------------------------------------------------------
    # Evidence queries (Examples 1-2)
    # ------------------------------------------------------------------
    def evidence_for(self, individual: Individual, concept: Concept) -> bool:
        """``K |=4 a : C`` — every four-valued model puts ``a`` in ``proj+(C)``.

        The paper's query "is there any information indicating ``a`` is a
        ``C``?" (Example 1).
        """
        self._sync()
        with obs_span("evidence_probe") as span:
            span.set("direction", "for")
            entailed = self.classical_reasoner.is_instance(
                individual, pos_transform(concept)
            )
            span.set("entailed", entailed)
            return entailed

    def evidence_against(self, individual: Individual, concept: Concept) -> bool:
        """``K |=4 a : not C`` — every model puts ``a`` in ``proj-(C)``."""
        self._sync()
        with obs_span("evidence_probe") as span:
            span.set("direction", "against")
            entailed = self.classical_reasoner.is_instance(
                individual, neg_transform(concept)
            )
            span.set("entailed", entailed)
            return entailed

    def assertion_value(self, individual: Individual, concept: Concept) -> FourValue:
        """The entailed Belnap status of ``C(a)``.

        ``BOTH`` means the KB4 provably carries evidence in both
        directions (a localised contradiction); ``NEITHER`` means neither
        direction is entailed.
        """
        return from_evidence(
            self.evidence_for(individual, concept),
            self.evidence_against(individual, concept),
        )

    def assertion_values(
        self, pairs: Iterable[Tuple[Individual, Concept]]
    ) -> Dict[Tuple[Individual, Concept], FourValue]:
        """The Belnap status of every ``C(a)`` in a batch.

        Probes are deduplicated and sorted concept-first, so the two
        evidence directions of one concept (and repeated concepts across
        individuals) run adjacently and resolve from the query cache
        instead of fresh tableau calls.
        """
        ordered = sorted(
            set(pairs), key=lambda pair: (repr(pair[1]), pair[0])
        )
        return {
            (individual, concept): self.assertion_value(individual, concept)
            for individual, concept in ordered
        }

    def role_evidence_for(
        self, role, source: Individual, target: Individual
    ) -> bool:
        """Whether ``K |=4 R(a, b)`` (positive role evidence entailed)."""
        self._sync()
        return self.classical_reasoner.entails(
            ax.RoleAssertion(positive_role(role), source, target)
        )

    def role_evidence_against(
        self, role, source: Individual, target: Individual
    ) -> bool:
        """Whether ``K |=4 not R(a, b)`` (negative role evidence entailed).

        By Definition 8, ``(a, b) in proj-(R)`` iff the pair lies outside
        the classical ``R=`` half, i.e. the induced KB entails the negative
        assertion on ``R=``.
        """
        self._sync()
        return self.classical_reasoner.entails(
            ax.NegativeRoleAssertion(eq_role(role), source, target)
        )

    def role_value(
        self, role, source: Individual, target: Individual
    ) -> FourValue:
        """The entailed Belnap status of ``R(a, b)``."""
        return from_evidence(
            self.role_evidence_for(role, source, target),
            self.role_evidence_against(role, source, target),
        )

    # ------------------------------------------------------------------
    # Inclusion entailment (Corollary 7)
    # ------------------------------------------------------------------
    def entails_inclusion(self, inclusion: ConceptInclusion4) -> bool:
        """Whether the KB4 four-valuedly entails a concept inclusion.

        Implemented by Corollary 7's reductions to concept
        unsatisfiability in the induced KB.
        """
        self._sync()
        sub, sup = inclusion.sub, inclusion.sup
        if inclusion.kind is InclusionKind.MATERIAL:
            probe = And.of(Not(neg_transform(sub)), Not(pos_transform(sup)))
            return not self.classical_reasoner.is_satisfiable(probe)
        if inclusion.kind is InclusionKind.INTERNAL:
            probe = And.of(pos_transform(sub), Not(pos_transform(sup)))
            return not self.classical_reasoner.is_satisfiable(probe)
        first = And.of(pos_transform(sub), Not(pos_transform(sup)))
        second = And.of(neg_transform(sup), Not(neg_transform(sub)))
        return not self.classical_reasoner.is_satisfiable(
            first
        ) and not self.classical_reasoner.is_satisfiable(second)

    def entails_role_inclusion(self, inclusion: RoleInclusion4) -> bool:
        """Whether the KB4 entails a role inclusion of the given kind.

        The probes mirror how :func:`~repro.four_dl.transform.transform_axiom`
        translates each inclusion strength (paper Table 3): material
        ``R |-> S`` holds when the classical ``R= [= S+`` does (evidence
        not-against ``R`` forces evidence for ``S``); internal ``R < S``
        is ``R+ [= S+`` alone; strong ``R -> S`` adds the contrapositive
        carrier ``R= [= S=`` on top of ``R+ [= S+``.
        """
        self._sync()
        if inclusion.kind is InclusionKind.MATERIAL:
            return self.classical_reasoner.entails(
                ax.RoleInclusion(eq_role(inclusion.sub), positive_role(inclusion.sup))
            )
        if inclusion.kind is InclusionKind.INTERNAL:
            return self.classical_reasoner.entails(
                ax.RoleInclusion(
                    positive_role(inclusion.sub), positive_role(inclusion.sup)
                )
            )
        return self.classical_reasoner.entails(
            ax.RoleInclusion(
                positive_role(inclusion.sub), positive_role(inclusion.sup)
            )
        ) and self.classical_reasoner.entails(
            ax.RoleInclusion(eq_role(inclusion.sub), eq_role(inclusion.sup))
        )

    def entails(self, axiom: object) -> bool:
        """Four-valued entailment of an inclusion or an ABox assertion."""
        if isinstance(axiom, ConceptInclusion4):
            return self.entails_inclusion(axiom)
        if isinstance(axiom, RoleInclusion4):
            return self.entails_role_inclusion(axiom)
        if isinstance(axiom, ax.ConceptAssertion):
            return self.evidence_for(axiom.individual, axiom.concept)
        if isinstance(axiom, ax.RoleAssertion):
            return self.role_evidence_for(axiom.role, axiom.source, axiom.target)
        if isinstance(axiom, ax.NegativeRoleAssertion):
            return self.role_evidence_against(
                axiom.role, axiom.source, axiom.target
            )
        if isinstance(axiom, (ax.SameIndividual, ax.DifferentIndividuals)):
            # Definition 6 leaves individuals untouched by the signature
            # doubling, so (in)equality holds four-valuedly iff it holds
            # in the induced classical KB.
            self._sync()
            return self.classical_reasoner.entails(axiom)
        if isinstance(axiom, ax.DataAssertion):
            # Datatype assertions are two-valued in the paper; only the
            # datatype role is doubled, and positive evidence lives on
            # the U+ half.
            self._sync()
            return self.classical_reasoner.entails(
                ax.DataAssertion(
                    positive_data_role(axiom.role), axiom.source, axiom.value
                )
            )
        raise UnsupportedAxiomError(axiom, service="4-valued entails")

    # ------------------------------------------------------------------
    # Degrading (budgeted) services
    # ------------------------------------------------------------------
    def _run_bounded(self, thunk, budget: Optional[Budget]) -> Verdict:
        """Run a boolean four-valued service degradingly (see
        :meth:`repro.dl.reasoner.Reasoner._run_bounded`)."""
        self._sync()
        return self.classical_reasoner._run_bounded(thunk, budget)

    def is_satisfiable_verdict(self, budget: Optional[Budget] = None) -> Verdict:
        """Three-way four-valued satisfiability (degrading
        :meth:`is_satisfiable`): TRUE, FALSE, or UNKNOWN with a
        :class:`~repro.dl.errors.DegradationReason` on budget exhaustion."""
        return self._run_bounded(self.is_satisfiable, budget)

    def entails_verdict(
        self, axiom: object, budget: Optional[Budget] = None
    ) -> Verdict:
        """Three-way four-valued entailment (degrading :meth:`entails`).

        Multi-probe axioms (strong inclusions, equivalence-like splits)
        run under one metered scope, so the budget governs the whole
        question.  Unsupported axiom kinds still raise
        :class:`~repro.dl.errors.UnsupportedAxiomError`.
        """
        return self._run_bounded(lambda: self.entails(axiom), budget)

    def evidence_for_verdict(
        self,
        individual: Individual,
        concept: Concept,
        budget: Optional[Budget] = None,
    ) -> Verdict:
        """Three-way positive-evidence query (degrading :meth:`evidence_for`)."""
        return self._run_bounded(
            lambda: self.evidence_for(individual, concept), budget
        )

    def evidence_against_verdict(
        self,
        individual: Individual,
        concept: Concept,
        budget: Optional[Budget] = None,
    ) -> Verdict:
        """Three-way negative-evidence query (degrading :meth:`evidence_against`)."""
        return self._run_bounded(
            lambda: self.evidence_against(individual, concept), budget
        )

    def assertion_value_bounded(
        self,
        individual: Individual,
        concept: Concept,
        budget: Optional[Budget] = None,
    ) -> "BoundedFourValue":
        """The Belnap status of ``C(a)``, degrading to UNKNOWN.

        Both evidence directions run under *one* metered scope, so the
        deadline and cumulative caps govern the combined question.  On
        exhaustion the outcome carries ``value=None`` plus the
        :class:`~repro.dl.errors.DegradationReason` — the four truth
        values are never guessed from a half-finished search.
        """
        self._sync()
        classical = self.classical_reasoner
        meter = classical._start_meter(budget)
        try:
            with classical._metered(meter):
                value = from_evidence(
                    self.evidence_for(individual, concept),
                    self.evidence_against(individual, concept),
                )
            return BoundedFourValue(value=value)
        except BudgetExceeded as exc:
            self.stats.unknown_verdicts += 1
            add_event("unknown_verdict", {"reason": exc.reason.value})
            return BoundedFourValue(
                value=None, reason=exc.reason, message=str(exc)
            )
        except (ParseError, UnsupportedFeature):
            raise
        except Exception as exc:  # contain faults, degrade to UNKNOWN
            self.stats.unknown_verdicts += 1
            add_event(
                "unknown_verdict", {"reason": DegradationReason.ERROR.value}
            )
            return BoundedFourValue(
                value=None,
                reason=DegradationReason.ERROR,
                message=f"{type(exc).__name__}: {exc}",
            )

    def classify_bounded(
        self,
        kind: InclusionKind = InclusionKind.INTERNAL,
        budget: Optional[Budget] = None,
    ) -> PartialClassification:
        """Classification that degrades to a partial hierarchy.

        The four-valued counterpart of
        :meth:`repro.dl.reasoner.Reasoner.classify_bounded`: decided rows
        are exactly what :meth:`classify` would report; exhausted pairs
        are listed as undecided with the
        :class:`~repro.dl.errors.DegradationReason`.
        """
        from .transform import positive_concept

        atoms = sorted(self.kb4.concepts_in_signature(), key=lambda a: a.name)
        self._sync()
        if kind is InclusionKind.INTERNAL:
            by_pos = {positive_concept(atom): atom for atom in atoms}
            partial = self.classical_reasoner.classify_bounded(
                atoms=by_pos.keys(), budget=budget
            )
            return PartialClassification(
                hierarchy={
                    by_pos[pos_atom]: frozenset(
                        by_pos[sup] for sup in subsumers
                    )
                    for pos_atom, subsumers in partial.hierarchy.items()
                },
                undecided=tuple(
                    (by_pos[sub], by_pos[sup])
                    for sub, sup in partial.undecided
                ),
                reason=partial.reason,
                message=partial.message,
            )
        classical = self.classical_reasoner
        meter = classical._start_meter(budget)
        hierarchy: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
        undecided = []
        reason: Optional[DegradationReason] = None
        message = ""
        with classical._metered(meter):
            for sub in atoms:
                if reason is not None:
                    undecided.extend((sub, sup) for sup in atoms)
                    continue
                row = set()
                for col, sup in enumerate(atoms):
                    try:
                        if self.entails_inclusion(
                            ConceptInclusion4(sub, sup, kind)
                        ):
                            row.add(sup)
                    except BudgetExceeded as exc:
                        reason = exc.reason
                        message = str(exc)
                        undecided.extend(
                            (sub, later) for later in atoms[col:]
                        )
                        break
                else:
                    hierarchy[sub] = frozenset(row)
        if reason is not None:
            self.stats.unknown_verdicts += 1
        return PartialClassification(
            hierarchy=hierarchy,
            undecided=tuple(undecided),
            reason=reason,
            message=message,
        )

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def _entailment_probe_sets(self, axiom: object):
        """Classical probe sets deciding a four-valued entailment.

        Mirrors :meth:`entails`: the axiom holds iff the induced KB is
        unsatisfiable with *each* returned probe set (Corollary 7).
        """
        from ..dl.reasoner import _PROBE

        classical = self.classical_reasoner
        if isinstance(axiom, ConceptInclusion4):
            sub, sup = axiom.sub, axiom.sup
            if axiom.kind is InclusionKind.MATERIAL:
                probe = And.of(Not(neg_transform(sub)), Not(pos_transform(sup)))
                return ((ax.ConceptAssertion(_PROBE, probe),),)
            if axiom.kind is InclusionKind.INTERNAL:
                probe = And.of(pos_transform(sub), Not(pos_transform(sup)))
                return ((ax.ConceptAssertion(_PROBE, probe),),)
            first = And.of(pos_transform(sub), Not(pos_transform(sup)))
            second = And.of(neg_transform(sup), Not(neg_transform(sub)))
            return (
                (ax.ConceptAssertion(_PROBE, first),),
                (ax.ConceptAssertion(_PROBE, second),),
            )
        if isinstance(axiom, RoleInclusion4):
            if axiom.kind is InclusionKind.MATERIAL:
                return classical._entailment_probes(
                    ax.RoleInclusion(eq_role(axiom.sub), positive_role(axiom.sup))
                )
            internal = classical._entailment_probes(
                ax.RoleInclusion(
                    positive_role(axiom.sub), positive_role(axiom.sup)
                )
            )
            if axiom.kind is InclusionKind.INTERNAL:
                return internal
            return internal + classical._entailment_probes(
                ax.RoleInclusion(eq_role(axiom.sub), eq_role(axiom.sup))
            )
        if isinstance(axiom, ax.ConceptAssertion):
            return classical._entailment_probes(
                ax.ConceptAssertion(
                    axiom.individual, pos_transform(axiom.concept)
                )
            )
        if isinstance(axiom, ax.RoleAssertion):
            return classical._entailment_probes(
                ax.RoleAssertion(
                    positive_role(axiom.role), axiom.source, axiom.target
                )
            )
        if isinstance(axiom, ax.NegativeRoleAssertion):
            return classical._entailment_probes(
                ax.NegativeRoleAssertion(
                    eq_role(axiom.role), axiom.source, axiom.target
                )
            )
        if isinstance(axiom, (ax.SameIndividual, ax.DifferentIndividuals)):
            return classical._entailment_probes(axiom)
        if isinstance(axiom, ax.DataAssertion):
            return classical._entailment_probes(
                ax.DataAssertion(
                    positive_data_role(axiom.role), axiom.source, axiom.value
                )
            )
        raise UnsupportedAxiomError(axiom, service="4-valued explain")

    def _shrink_check(self, axiom: object):
        """The sub-KB4 entailment re-check used by justification shrinking.

        Builds a fresh four-valued reasoner per candidate subset with the
        query cache bypassed, so cached full-KB verdicts never leak into
        questions about sub-KBs.
        """

        def check(axioms4) -> bool:
            self.stats.shrink_probes += 1
            sub = Reasoner4(
                KnowledgeBase4.of(axioms4),
                max_nodes=self.max_nodes,
                max_branches=self.max_branches,
                use_cache=False,
                search=self.search,
                engine=self.engine,
            )
            try:
                return sub.entails(axiom)
            except Exception:
                return False

        return check

    def explain(self, axiom: object, trace: bool = False):
        """Why the KB4 four-valuedly entails ``axiom``.

        Returns an :class:`repro.explain.model.Explanation` whose
        justifications cite the *original* KB4 axioms — material /
        internal / strong inclusions (Table 3) and assertions — never the
        induced ``A__pos``/``A__neg`` artifacts.  The classical unsat
        core of each probe run is mapped back through the
        transformation's provenance map to seed the search; minimality
        comes from deletion-based shrinking over KB4 axioms with the
        cache bypassed.

        With ``trace=True`` each probe run records a structured clash
        trace over the induced KB.
        """
        from ..explain.justify import minimal_justification
        from ..explain.model import Explanation, Trace
        from .transform import cached_transform_provenance

        self._sync()
        probe_sets = self._entailment_probe_sets(axiom)
        tableau = self.classical_reasoner._provenance_tableau()
        provenance = cached_transform_provenance(self.kb4)
        traces = []
        entailed = True
        seed: set = set()
        seed_known = True
        for probes in probe_sets:
            recorder = Trace() if trace else None
            satisfiable = tableau.is_satisfiable(probes, trace=recorder)
            if recorder is not None:
                traces.append(recorder)
            if satisfiable:
                entailed = False
                break
            core = tableau.last_unsat_core
            if core is None:
                seed_known = False
                continue
            for classical_axiom in core:
                sources = provenance.get(classical_axiom)
                if sources is None:
                    # An induced axiom we cannot attribute (should not
                    # happen); fall back to shrinking from the full KB4.
                    seed_known = False
                else:
                    seed.update(sources)
        if not entailed:
            return Explanation(
                query=axiom, entailed=False, traces=tuple(traces)
            )
        justification = minimal_justification(
            list(self.kb4.axioms()),
            self._shrink_check(axiom),
            seed=frozenset(seed) if seed_known else None,
        )
        self.stats.explanations_computed += 1
        return Explanation(
            query=axiom,
            entailed=True,
            justifications=(justification,),
            traces=tuple(traces),
        )

    def explain_unsatisfiability(self, trace: bool = False):
        """A minimal four-valued-unsatisfiable sub-KB4, when one exists.

        Returns an :class:`repro.explain.model.InconsistencyExplanation`
        over KB4 axioms (Theorem 6 reduces the check to classical
        consistency of each candidate's induced KB).
        """
        from ..explain.justify import minimal_justification
        from ..explain.model import InconsistencyExplanation, Trace
        from .transform import cached_transform_provenance

        self._sync()
        tableau = self.classical_reasoner._provenance_tableau()
        recorder = Trace() if trace else None
        if tableau.is_satisfiable(trace=recorder):
            return InconsistencyExplanation(
                consistent=True,
                traces=(recorder,) if recorder is not None else (),
            )
        seed = None
        core = tableau.last_unsat_core
        if core is not None:
            provenance = cached_transform_provenance(self.kb4)
            mapped = [provenance.get(classical_axiom) for classical_axiom in core]
            if all(sources is not None for sources in mapped):
                seed = frozenset(
                    source for sources in mapped for source in sources
                )

        def check(axioms4) -> bool:
            self.stats.shrink_probes += 1
            sub = Reasoner4(
                KnowledgeBase4.of(axioms4),
                max_nodes=self.max_nodes,
                max_branches=self.max_branches,
                use_cache=False,
                search=self.search,
                engine=self.engine,
            )
            try:
                return not sub.is_satisfiable()
            except Exception:
                return False

        justification = minimal_justification(
            list(self.kb4.axioms()), check, seed=seed
        )
        self.stats.explanations_computed += 1
        return InconsistencyExplanation(
            consistent=False,
            justification=justification,
            traces=(recorder,) if recorder is not None else (),
        )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(
        self, kind: InclusionKind = InclusionKind.INTERNAL
    ) -> Dict[AtomicConcept, FrozenSet[AtomicConcept]]:
        """The atomic concept hierarchy under one inclusion strength.

        Maps each atomic concept to its entailed subsumers under the
        chosen inclusion kind (internal by default: the positive-evidence
        taxonomy).  Unlike classical classification, this stays
        informative on inconsistent ontologies.

        Internal inclusion ``A < B`` holds iff classically
        ``A+ [= B+`` (Corollary 7), so the internal taxonomy is computed
        by the classical told-subsumer/traversal classifier over the
        positive atoms — far fewer tableau calls than the pairwise sweep.
        The material and strong kinds mix both polarities and keep the
        pairwise loop (each probe still flows through the query cache).
        """
        atoms = sorted(self.kb4.concepts_in_signature(), key=lambda a: a.name)
        if kind is InclusionKind.INTERNAL:
            self._sync()
            by_pos = {positive_concept(atom): atom for atom in atoms}
            positive_hierarchy = self.classical_reasoner.classify(
                atoms=by_pos.keys()
            )
            return {
                by_pos[pos_atom]: frozenset(by_pos[sup] for sup in subsumers)
                for pos_atom, subsumers in positive_hierarchy.items()
            }
        with obs_span("classify", stats=self.stats) as span:
            span.set("atoms", len(atoms))
            span.set("kind", kind.name.lower())
            hierarchy: Dict[AtomicConcept, FrozenSet[AtomicConcept]] = {}
            for sub in atoms:
                hierarchy[sub] = frozenset(
                    sup
                    for sup in atoms
                    if self.entails_inclusion(ConceptInclusion4(sub, sup, kind))
                )
            return hierarchy

    # ------------------------------------------------------------------
    # Survey helpers
    # ------------------------------------------------------------------
    def individual_report(
        self, individual: Individual, concepts: Optional[Iterable[Concept]] = None
    ) -> Dict[Concept, FourValue]:
        """The entailed Belnap status of each concept for one individual."""
        if concepts is None:
            concepts = sorted(self.kb4.concepts_in_signature(), key=lambda c: c.name)
        return {
            concept: self.assertion_value(individual, concept)
            for concept in concepts
        }

    def contradictory_facts(self) -> Dict[Individual, FrozenSet[AtomicConcept]]:
        """The localised contradictions: who is provably BOTH in what.

        This is the diagnostic the paper motivates — instead of the whole
        KB trivialising, the conflict set is pinpointed per individual.
        """
        report: Dict[Individual, FrozenSet[AtomicConcept]] = {}
        for individual in sorted(self.kb4.individuals_in_signature()):
            both = frozenset(
                concept
                for concept in self.kb4.concepts_in_signature()
                if self.assertion_value(individual, concept) is FourValue.BOTH
            )
            if both:
                report[individual] = both
        return report
