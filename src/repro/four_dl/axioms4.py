"""Syntax of SHOIN(D)4: the three inclusion forms and four-valued KBs.

SHOIN(D)4 keeps every concept constructor and fact-assertion form of
SHOIN(D) (paper Section 3.1) and replaces the single classical inclusion
by three axiom forms per inclusion kind (concept, object role, datatype
role):

* **material** ``C |-> D`` — allows exceptions (birds fly, penguins don't);
* **internal** ``C < D`` — positive evidence propagates forward;
* **strong** ``C -> D`` — positive evidence propagates forward *and*
  negative evidence propagates backward (contraposition).

A :class:`KnowledgeBase4` bundles these with an ordinary SHOIN(D) ABox
(assertions keep their classical syntax; their four-valued meaning is
given in Table 3).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..dl import axioms as ax
from ..dl.incremental import (
    ChangeLog,
    ChangeRecord,
    EditTransaction,
    net_delta,
)
from ..dl.concepts import (
    AtomicConcept,
    Concept,
    atomic_concepts,
    datatype_roles,
    nominals,
    object_roles,
)
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.roles import AtomicRole, DatatypeRole, ObjectRole


class InclusionKind(enum.Enum):
    """The three four-valued inclusion strengths (paper Section 3.1)."""

    MATERIAL = "material"
    INTERNAL = "internal"
    STRONG = "strong"

    @property
    def symbol(self) -> str:
        return {"material": "|->", "internal": "<", "strong": "->"}[self.value]


class Axiom4:
    """Base class of four-valued TBox axioms."""


@dataclass(frozen=True)
class ConceptInclusion4(Axiom4):
    """A four-valued concept inclusion of one of the three kinds."""

    sub: Concept
    sup: Concept
    kind: InclusionKind

    def __repr__(self) -> str:
        return f"{self.sub!r} {self.kind.symbol} {self.sup!r}"


@dataclass(frozen=True)
class RoleInclusion4(Axiom4):
    """A four-valued object role inclusion of one of the three kinds."""

    sub: ObjectRole
    sup: ObjectRole
    kind: InclusionKind

    def __repr__(self) -> str:
        return f"{self.sub!r} {self.kind.symbol} {self.sup!r}"


@dataclass(frozen=True)
class DatatypeRoleInclusion4(Axiom4):
    """A four-valued datatype role inclusion of one of the three kinds."""

    sub: DatatypeRole
    sup: DatatypeRole
    kind: InclusionKind

    def __repr__(self) -> str:
        return f"{self.sub!r} {self.kind.symbol} {self.sup!r}"


@dataclass(frozen=True)
class Transitivity4(Axiom4):
    """Four-valued transitivity: the positive extension is transitive."""

    role: AtomicRole

    def __repr__(self) -> str:
        return f"Trans({self.role!r})"


# Convenience constructors matching the paper's notation -------------------

def material(sub: Concept, sup: Concept) -> ConceptInclusion4:
    """``sub |-> sup`` — inclusion tolerating exceptions."""
    return ConceptInclusion4(sub, sup, InclusionKind.MATERIAL)


def internal(sub: Concept, sup: Concept) -> ConceptInclusion4:
    """``sub < sup`` — positive-evidence inclusion."""
    return ConceptInclusion4(sub, sup, InclusionKind.INTERNAL)


def strong(sub: Concept, sup: Concept) -> ConceptInclusion4:
    """``sub -> sup`` — contraposable inclusion."""
    return ConceptInclusion4(sub, sup, InclusionKind.STRONG)


@dataclass
class KnowledgeBase4:
    """A SHOIN(D)4 knowledge base: four-valued TBox + classical-syntax ABox.

    The ABox reuses the classical assertion classes (``a : C``, ``R(a, b)``
    etc.); Table 3 reinterprets them four-valuedly (``a : C`` means
    ``a in proj+(C^I)``).
    """

    concept_inclusions: List[ConceptInclusion4] = field(default_factory=list)
    role_inclusions: List[RoleInclusion4] = field(default_factory=list)
    datatype_role_inclusions: List[DatatypeRoleInclusion4] = field(
        default_factory=list
    )
    transitivity_axioms: List[Transitivity4] = field(default_factory=list)
    concept_assertions: List[ax.ConceptAssertion] = field(default_factory=list)
    role_assertions: List[ax.RoleAssertion] = field(default_factory=list)
    negative_role_assertions: List[ax.NegativeRoleAssertion] = field(
        default_factory=list
    )
    data_assertions: List[ax.DataAssertion] = field(default_factory=list)
    same_individuals: List[ax.SameIndividual] = field(default_factory=list)
    different_individuals: List[ax.DifferentIndividuals] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        # Monotone mutation counter mirroring KnowledgeBase.version:
        # Reasoner4 re-transforms and drops cached answers when it
        # moves, consulting the change log to do so incrementally.
        self._version = 0
        self._log = ChangeLog()

    @property
    def version(self) -> int:
        """A counter incremented by every mutation; caches key on it."""
        return self._version

    # ------------------------------------------------------------------
    # Construction & mutation
    # ------------------------------------------------------------------
    def _expanded(self, axiom: object) -> Tuple[object, ...]:
        """The stored form of an axiom (role assertions normalised)."""
        if isinstance(axiom, (ax.RoleAssertion, ax.NegativeRoleAssertion)):
            return (axiom.normalised(),)
        return (axiom,)

    def _list_for(self, axiom: object) -> List[object]:
        """The per-kind bucket a stored-form axiom lives in."""
        if isinstance(axiom, ConceptInclusion4):
            return self.concept_inclusions
        if isinstance(axiom, RoleInclusion4):
            return self.role_inclusions
        if isinstance(axiom, DatatypeRoleInclusion4):
            return self.datatype_role_inclusions
        if isinstance(axiom, Transitivity4):
            return self.transitivity_axioms
        if isinstance(axiom, ax.ConceptAssertion):
            return self.concept_assertions
        if isinstance(axiom, ax.RoleAssertion):
            return self.role_assertions
        if isinstance(axiom, ax.NegativeRoleAssertion):
            return self.negative_role_assertions
        if isinstance(axiom, ax.DataAssertion):
            return self.data_assertions
        if isinstance(axiom, ax.SameIndividual):
            return self.same_individuals
        if isinstance(axiom, ax.DifferentIndividuals):
            return self.different_individuals
        raise TypeError(f"not a SHOIN(D)4 axiom: {axiom!r}")

    def _count(self, axiom: object) -> int:
        """Multiplicity of a stored-form axiom (KBs are multisets)."""
        return self._list_for(axiom).count(axiom)

    def add(self, *axioms_: object) -> "KnowledgeBase4":
        """Add four-valued TBox axioms or classical ABox assertions."""
        for axiom in axioms_:
            self._version += 1
            for concrete in self._expanded(axiom):
                self._list_for(concrete).append(concrete)
                self._log.record(self._version, "add", concrete)
        return self

    def add_axiom(self, axiom: object) -> "KnowledgeBase4":
        """Add one axiom (the mutation-API spelling of :meth:`add`)."""
        return self.add(axiom)

    def remove_axiom(self, axiom: object) -> "KnowledgeBase4":
        """Remove one occurrence of an axiom; absent axioms raise.

        Role assertions are matched in their normalised (named-role)
        form, mirroring :meth:`add`.
        """
        expanded = self._expanded(axiom)
        need = Counter(expanded)
        for concrete, count in need.items():
            if self._count(concrete) < count:
                raise ValueError(f"axiom not present: {concrete!r}")
        self._version += 1
        for concrete in expanded:
            self._list_for(concrete).remove(concrete)
            self._log.record(self._version, "remove", concrete)
        return self

    def retract(self, axiom: object) -> bool:
        """Remove an axiom if present; True when something was removed."""
        try:
            self.remove_axiom(axiom)
        except ValueError:
            return False
        return True

    def edit(self) -> EditTransaction:
        """An atomic batch of mutations (see ``KnowledgeBase.edit``)."""
        return EditTransaction(self)

    def changes_since(self, version: int) -> Optional[List[ChangeRecord]]:
        """The journalled mutations after ``version``, oldest first.

        ``None`` when ``version`` predates the bounded change-log
        window — consumers must then invalidate wholesale.
        """
        return self._log.since(version)

    def delta_since(
        self, version: int
    ) -> Optional[Tuple[FrozenSet[object], FrozenSet[object]]]:
        """The net ``(added, removed)`` axiom sets after ``version``."""
        records = self._log.since(version)
        if records is None:
            return None
        return net_delta(records)

    @staticmethod
    def of(axioms_: Iterable[object]) -> "KnowledgeBase4":
        """Build a KB4 from an iterable of axioms."""
        return KnowledgeBase4().add(*axioms_)

    def copy(self) -> "KnowledgeBase4":
        return KnowledgeBase4.of(self.axioms())

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def tbox(self) -> Iterator[object]:
        yield from self.concept_inclusions
        yield from self.role_inclusions
        yield from self.datatype_role_inclusions
        yield from self.transitivity_axioms

    def abox(self) -> Iterator[ax.ABoxAxiom]:
        yield from self.concept_assertions
        yield from self.role_assertions
        yield from self.negative_role_assertions
        yield from self.data_assertions
        yield from self.same_individuals
        yield from self.different_individuals

    def axioms(self) -> Iterator[object]:
        yield from self.tbox()
        yield from self.abox()

    def __len__(self) -> int:
        return sum(1 for _ in self.axioms())

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def _all_concepts(self) -> Iterator[Concept]:
        for inclusion in self.concept_inclusions:
            yield inclusion.sub
            yield inclusion.sup
        for assertion in self.concept_assertions:
            yield assertion.concept

    def concepts_in_signature(self) -> FrozenSet[AtomicConcept]:
        found: Set[AtomicConcept] = set()
        for concept in self._all_concepts():
            found |= atomic_concepts(concept)
        return frozenset(found)

    def object_roles_in_signature(self) -> FrozenSet[AtomicRole]:
        found: Set[AtomicRole] = set()
        for concept in self._all_concepts():
            found |= {r.named for r in object_roles(concept)}
        for inclusion in self.role_inclusions:
            found.add(inclusion.sub.named)
            found.add(inclusion.sup.named)
        for transitivity in self.transitivity_axioms:
            found.add(transitivity.role)
        for assertion in self.role_assertions:
            found.add(assertion.role.named)
        for negative in self.negative_role_assertions:
            found.add(negative.role.named)
        return frozenset(found)

    def datatype_roles_in_signature(self) -> FrozenSet[DatatypeRole]:
        found: Set[DatatypeRole] = set()
        for concept in self._all_concepts():
            found |= datatype_roles(concept)
        for inclusion in self.datatype_role_inclusions:
            found.add(inclusion.sub)
            found.add(inclusion.sup)
        for assertion in self.data_assertions:
            found.add(assertion.role)
        return frozenset(found)

    def individuals_in_signature(self) -> FrozenSet[Individual]:
        found: Set[Individual] = set()
        for concept in self._all_concepts():
            found |= nominals(concept)
        for assertion in self.concept_assertions:
            found.add(assertion.individual)
        for assertion in self.role_assertions:
            found.add(assertion.source)
            found.add(assertion.target)
        for negative in self.negative_role_assertions:
            found.add(negative.source)
            found.add(negative.target)
        for assertion in self.data_assertions:
            found.add(assertion.source)
        for equality in self.same_individuals:
            found.add(equality.left)
            found.add(equality.right)
        for inequality in self.different_individuals:
            found.add(inequality.left)
            found.add(inequality.right)
        return frozenset(found)


def collapse_to_classical(kb4: KnowledgeBase4) -> KnowledgeBase:
    """Forget the inclusion strengths: every inclusion becomes classical ``[=``.

    This is the two-valued reading an ordinary OWL DL system gives the
    same ontology — the baseline the paper's examples contrast with (the
    penguin TBox is satisfiable four-valuedly, unsatisfiable classically).
    """
    kb = KnowledgeBase()
    for inclusion in kb4.concept_inclusions:
        kb.add(ax.ConceptInclusion(inclusion.sub, inclusion.sup))
    for role_inclusion in kb4.role_inclusions:
        kb.add(ax.RoleInclusion(role_inclusion.sub, role_inclusion.sup))
    for data_inclusion in kb4.datatype_role_inclusions:
        kb.add(ax.DatatypeRoleInclusion(data_inclusion.sub, data_inclusion.sup))
    for transitivity in kb4.transitivity_axioms:
        kb.add(ax.Transitivity(transitivity.role))
    for assertion in kb4.abox():
        kb.add(assertion)
    return kb


def from_classical(kb: KnowledgeBase, kind: InclusionKind = InclusionKind.INTERNAL) -> KnowledgeBase4:
    """Reinterpret a classical KB as a SHOIN(D)4 KB.

    Every classical inclusion becomes an inclusion of the given ``kind``
    (internal by default, the weakest reading that still propagates
    positive evidence — the choice the paper's Example 2 makes).
    """
    kb4 = KnowledgeBase4()
    for inclusion in kb.concept_inclusions:
        kb4.add(ConceptInclusion4(inclusion.sub, inclusion.sup, kind))
    for inclusion in kb.role_inclusions:
        kb4.add(RoleInclusion4(inclusion.sub, inclusion.sup, kind))
    for inclusion in kb.datatype_role_inclusions:
        kb4.add(DatatypeRoleInclusion4(inclusion.sub, inclusion.sup, kind))
    for transitivity in kb.transitivity_axioms:
        kb4.add(Transitivity4(transitivity.role))
    for assertion in kb.abox():
        kb4.add(assertion)
    return kb4
