"""Inconsistency measurement over SHOIN(D)4 (the paper's follow-up line).

The paper's conclusion points at deeper treatments of contradiction; the
authors' own subsequent work measures *how* inconsistent an ontology is
using exactly this four-valued semantics.  This module implements the
entailment-based variant of those measures:

* :func:`inconsistency_degree` — the fraction of atomic facts
  ``C(a)`` whose entailed Belnap status is BOTH;
* :func:`information_degree` — the fraction whose status is decided
  (not NEITHER): how much the ontology actually says;
* :func:`conflict_profile` — the full census per truth value, with
  per-concept and per-individual breakdowns, including role atoms.

All measures are computed from the reduction reasoner, so they inherit
its soundness/completeness and need no model enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dl.concepts import AtomicConcept
from ..dl.individuals import Individual
from ..dl.roles import AtomicRole
from ..fourvalued.truth import FourValue
from .reasoner4 import Reasoner4


@dataclass
class ConflictProfile:
    """A census of entailed truth values over the atomic facts."""

    concept_values: Dict[Tuple[Individual, AtomicConcept], FourValue] = field(
        default_factory=dict
    )
    role_values: Dict[
        Tuple[Individual, Individual, AtomicRole], FourValue
    ] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def count(self, value: FourValue) -> int:
        """How many atomic facts carry the given status."""
        return sum(
            1 for v in self.concept_values.values() if v is value
        ) + sum(1 for v in self.role_values.values() if v is value)

    @property
    def total(self) -> int:
        return len(self.concept_values) + len(self.role_values)

    @property
    def inconsistency_degree(self) -> float:
        """Fraction of atomic facts entailed BOTH (0.0 = conflict-free)."""
        if self.total == 0:
            return 0.0
        return self.count(FourValue.BOTH) / self.total

    @property
    def information_degree(self) -> float:
        """Fraction of atomic facts with a decided status (not NEITHER)."""
        if self.total == 0:
            return 0.0
        return 1.0 - self.count(FourValue.NEITHER) / self.total

    # ------------------------------------------------------------------
    # Breakdowns
    # ------------------------------------------------------------------
    def conflicts_by_concept(self) -> Dict[AtomicConcept, int]:
        """How many individuals are BOTH per concept (descending)."""
        counts: Dict[AtomicConcept, int] = {}
        for (_individual, concept), value in self.concept_values.items():
            if value is FourValue.BOTH:
                counts[concept] = counts.get(concept, 0) + 1
        return dict(
            sorted(counts.items(), key=lambda item: (-item[1], item[0].name))
        )

    def conflicts_by_individual(self) -> Dict[Individual, int]:
        """How many atomic facts are BOTH per individual (descending)."""
        counts: Dict[Individual, int] = {}
        for (individual, _concept), value in self.concept_values.items():
            if value is FourValue.BOTH:
                counts[individual] = counts.get(individual, 0) + 1
        for (source, target, _role), value in self.role_values.items():
            if value is FourValue.BOTH:
                counts[source] = counts.get(source, 0) + 1
        return dict(
            sorted(counts.items(), key=lambda item: (-item[1], item[0].name))
        )

    def rows(self) -> List[Tuple[str, str]]:
        """(fact, status) rows for table printing, conflicts first."""
        entries: List[Tuple[str, str, int]] = []
        order = {
            FourValue.BOTH: 0,
            FourValue.TRUE: 1,
            FourValue.FALSE: 2,
            FourValue.NEITHER: 3,
        }
        for (individual, concept), value in self.concept_values.items():
            entries.append(
                (f"{concept.name}({individual.name})", str(value), order[value])
            )
        for (source, target, role), value in self.role_values.items():
            entries.append(
                (
                    f"{role.name}({source.name}, {target.name})",
                    str(value),
                    order[value],
                )
            )
        entries.sort(key=lambda item: (item[2], item[0]))
        return [(fact, status) for fact, status, _rank in entries]


def conflict_profile(
    reasoner: Reasoner4, include_roles: bool = True
) -> ConflictProfile:
    """The full entailed-status census of a KB4's atomic facts.

    Cost: one pair of classical entailment checks per (individual,
    concept) pair, plus per role atom when ``include_roles`` — quadratic
    fan-out, intended for audit-sized ontologies.
    """
    profile = ConflictProfile()
    individuals = sorted(reasoner.kb4.individuals_in_signature())
    concepts = sorted(reasoner.kb4.concepts_in_signature(), key=lambda c: c.name)
    for individual in individuals:
        for concept in concepts:
            profile.concept_values[(individual, concept)] = (
                reasoner.assertion_value(individual, concept)
            )
    if include_roles:
        roles = sorted(
            reasoner.kb4.object_roles_in_signature(), key=lambda r: r.name
        )
        asserted_pairs = {
            (assertion.source, assertion.target)
            for assertion in reasoner.kb4.role_assertions
        } | {
            (assertion.source, assertion.target)
            for assertion in reasoner.kb4.negative_role_assertions
        }
        for source, target in sorted(asserted_pairs):
            for role in roles:
                profile.role_values[(source, target, role)] = (
                    reasoner.role_value(role, source, target)
                )
    return profile


def inconsistency_degree(reasoner: Reasoner4) -> float:
    """Shorthand: the BOTH-fraction of the concept-fact census."""
    return conflict_profile(reasoner, include_roles=False).inconsistency_degree


def information_degree(reasoner: Reasoner4) -> float:
    """Shorthand: the decided-fraction of the concept-fact census."""
    return conflict_profile(reasoner, include_roles=False).information_degree
