"""Prioritised paraconsistent reasoning (the paper's future-work combine).

The conclusion of the paper proposes combining the static, paraconsistent
view of contradiction with the dynamic, prioritised view of nonmonotonic
approaches (Benferhat-style stratification).  This module implements that
combination:

* axioms carry priorities (0 = most certain), as in
  :mod:`repro.baselines.stratified`;
* *unlike* the stratified baseline, **nothing is deleted**: the full KB4
  is reasoned with four-valuedly, so every conflict is still visible as a
  ``BOTH`` fact;
* for each ``BOTH`` fact, :meth:`DefeasibleReasoner4.adjudicate` walks
  the stratification prefixes and reports the *preferred* reading — the
  entailed status just before the conflicting lower-priority evidence
  enters — together with the stratum that introduced the conflict.

The result is strictly more informative than either ingredient: the
stratified baseline's answer (the preferred reading) plus the
paraconsistent conflict report (what disagreed, and how certain it was).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dl.concepts import AtomicConcept, Concept
from ..dl.individuals import Individual
from ..fourvalued.truth import FourValue
from .axioms4 import KnowledgeBase4
from .reasoner4 import Reasoner4

Stratification4 = Sequence[Tuple[object, int]]


@dataclass(frozen=True)
class AdjudicatedFact:
    """The verdict for one queried fact.

    ``value`` is the four-valued status over the whole KB4; ``preferred``
    is the status over the longest prefix of strata before the status
    became BOTH (equal to ``value`` when no conflict exists);
    ``conflict_stratum`` names the priority level whose axioms first made
    the fact contradictory, or ``None``.
    """

    value: FourValue
    preferred: FourValue
    conflict_stratum: Optional[int]

    @property
    def is_conflicted(self) -> bool:
        return self.value is FourValue.BOTH

    def describe(self) -> str:
        """A one-line human-readable verdict."""
        if not self.is_conflicted:
            return f"{self.value} (no conflict)"
        return (
            f"BOTH; preferred reading {self.preferred} "
            f"(conflict enters at stratum {self.conflict_stratum})"
        )


def default_stratification4(kb4: KnowledgeBase4) -> List[Tuple[object, int]]:
    """TBox at priority 0, ABox at priority 1 (the common heuristic)."""
    ranked: List[Tuple[object, int]] = []
    for axiom in kb4.tbox():
        ranked.append((axiom, 0))
    for axiom in kb4.abox():
        ranked.append((axiom, 1))
    return ranked


class DefeasibleReasoner4:
    """Four-valued reasoning refined by a priority stratification."""

    def __init__(self, stratification: Stratification4):
        self.stratification = list(stratification)
        priorities = sorted({p for _a, p in self.stratification})
        #: One KB4 per stratification prefix, most certain first.
        self._prefixes: List[Tuple[int, Reasoner4]] = []
        for cutoff in priorities:
            kb4 = KnowledgeBase4()
            for axiom, priority in self.stratification:
                if priority <= cutoff:
                    kb4.add(axiom)
            self._prefixes.append((cutoff, Reasoner4(kb4)))
        if not self._prefixes:
            self._prefixes = [(0, Reasoner4(KnowledgeBase4()))]
        #: The full-KB4 reasoner (the last prefix).
        self.reasoner = self._prefixes[-1][1]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def assertion_value(self, individual: Individual, concept: Concept) -> FourValue:
        """The ordinary four-valued status over the whole KB4."""
        return self.reasoner.assertion_value(individual, concept)

    def adjudicate(self, individual: Individual, concept: Concept) -> AdjudicatedFact:
        """Full verdict: overall status, preferred reading, blame stratum."""
        value = self.assertion_value(individual, concept)
        if value is not FourValue.BOTH:
            return AdjudicatedFact(value, value, None)
        preferred = FourValue.NEITHER
        conflict_stratum: Optional[int] = self._prefixes[-1][0]
        for cutoff, reasoner in self._prefixes:
            status = reasoner.assertion_value(individual, concept)
            if status is FourValue.BOTH:
                conflict_stratum = cutoff
                break
            preferred = status
        return AdjudicatedFact(value, preferred, conflict_stratum)

    def preferred_value(self, individual: Individual, concept: Concept) -> FourValue:
        """Shorthand: the adjudicated preferred reading."""
        return self.adjudicate(individual, concept).preferred

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def conflict_report(self) -> Dict[Tuple[Individual, AtomicConcept], AdjudicatedFact]:
        """Adjudicated verdicts for every conflicted atomic fact."""
        report: Dict[Tuple[Individual, AtomicConcept], AdjudicatedFact] = {}
        kb4 = self.reasoner.kb4
        for individual in sorted(kb4.individuals_in_signature()):
            for concept in sorted(
                kb4.concepts_in_signature(), key=lambda c: c.name
            ):
                verdict = self.adjudicate(individual, concept)
                if verdict.is_conflicted:
                    report[(individual, concept)] = verdict
        return report
