"""Induced interpretations between the two semantics (Definitions 8-9).

``classical_induced`` maps a four-valued interpretation ``I`` of a KB4 to
the classical interpretation ``I-bar`` of the transformed signature:
``(A+) = proj+(A)``, ``(A-) = proj-(A)``, ``(R+) = proj+(R)`` and
``(R=) = complement of proj-(R)``.  ``four_induced`` is the inverse
construction.  Lemma 5 / Theorem 6 state that these maps carry models to
models; the property tests in ``tests/four_dl/test_theorem6.py`` verify
exactly that, using the explicit evaluators of :mod:`repro.semantics`.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable

from ..dl.concepts import AtomicConcept
from ..dl.individuals import DataValue
from ..dl.roles import AtomicRole, DatatypeRole
from ..fourvalued.bilattice import BilatticePair
from ..semantics.four_interpretation import (
    DataRolePair,
    FourInterpretation,
    RolePair,
)
from ..semantics.interpretation import Interpretation
from .axioms4 import KnowledgeBase4
from .transform import (
    eq_data_role,
    eq_role,
    negative_concept,
    positive_concept,
    positive_data_role,
    positive_role,
)


def classical_induced(
    interpretation: FourInterpretation, kb4: KnowledgeBase4
) -> Interpretation:
    """The classical induced interpretation ``I-bar`` of Definition 8."""
    concept_ext: Dict[AtomicConcept, FrozenSet] = {}
    for concept in kb4.concepts_in_signature():
        pair = interpretation.concept_ext.get(
            concept, BilatticePair(frozenset(), frozenset())
        )
        concept_ext[positive_concept(concept)] = pair.positive
        concept_ext[negative_concept(concept)] = pair.negative
    role_ext: Dict[AtomicRole, FrozenSet] = {}
    all_pairs = frozenset(itertools.product(interpretation.domain, repeat=2))
    for role in kb4.object_roles_in_signature():
        pair = interpretation.role_pair(role)
        pos_name = positive_role(role)
        eq_name = eq_role(role)
        assert isinstance(pos_name, AtomicRole) and isinstance(eq_name, AtomicRole)
        role_ext[pos_name] = pair.positive
        role_ext[eq_name] = all_pairs - pair.negative
    data_role_ext: Dict[DatatypeRole, FrozenSet] = {}
    all_data_pairs = frozenset(
        itertools.product(interpretation.domain, interpretation.data_domain)
    )
    for role in kb4.datatype_roles_in_signature():
        pair = interpretation.data_role_pair(role)
        data_role_ext[positive_data_role(role)] = pair.positive
        data_role_ext[eq_data_role(role)] = all_data_pairs - pair.negative
    return Interpretation(
        domain=interpretation.domain,
        concept_ext=concept_ext,
        role_ext=role_ext,
        data_role_ext=data_role_ext,
        individual_map=dict(interpretation.individual_map),
    )


def four_induced(
    interpretation: Interpretation,
    kb4: KnowledgeBase4,
    data_domain: Iterable[DataValue] = (),
) -> FourInterpretation:
    """The four-valued induced interpretation of Definition 9."""
    concept_ext: Dict[AtomicConcept, BilatticePair] = {}
    for concept in kb4.concepts_in_signature():
        concept_ext[concept] = BilatticePair(
            interpretation.concept_ext.get(positive_concept(concept), frozenset()),
            interpretation.concept_ext.get(negative_concept(concept), frozenset()),
        )
    role_ext: Dict[AtomicRole, RolePair] = {}
    all_pairs = frozenset(itertools.product(interpretation.domain, repeat=2))
    for role in kb4.object_roles_in_signature():
        pos_name = positive_role(role)
        eq_name = eq_role(role)
        assert isinstance(pos_name, AtomicRole) and isinstance(eq_name, AtomicRole)
        role_ext[role] = RolePair(
            interpretation.role_ext.get(pos_name, frozenset()),
            all_pairs - interpretation.role_ext.get(eq_name, frozenset()),
        )
    data_values = frozenset(data_domain)
    data_role_ext: Dict[DatatypeRole, DataRolePair] = {}
    all_data_pairs = frozenset(
        itertools.product(interpretation.domain, data_values)
    )
    for role in kb4.datatype_roles_in_signature():
        data_role_ext[role] = DataRolePair(
            interpretation.data_role_ext.get(
                positive_data_role(role), frozenset()
            ),
            all_data_pairs
            - interpretation.data_role_ext.get(eq_data_role(role), frozenset()),
        )
    return FourInterpretation(
        domain=interpretation.domain,
        concept_ext=concept_ext,
        role_ext=role_ext,
        data_role_ext=data_role_ext,
        individual_map=dict(interpretation.individual_map),
        data_domain=data_values,
    )
