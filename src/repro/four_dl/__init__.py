"""SHOIN(D)4 — the paper's core contribution.

Four-valued knowledge bases with the three inclusion strengths
(:mod:`~repro.four_dl.axioms4`), the polynomial transformation to
classical SHOIN(D) of Definitions 5-7 (:mod:`~repro.four_dl.transform`),
the Definition 8/9 interpretation correspondences
(:mod:`~repro.four_dl.induced`), and the reduction-based paraconsistent
reasoner (:mod:`~repro.four_dl.reasoner4`).
"""

from .axioms4 import (
    Axiom4,
    ConceptInclusion4,
    DatatypeRoleInclusion4,
    InclusionKind,
    KnowledgeBase4,
    RoleInclusion4,
    Transitivity4,
    collapse_to_classical,
    from_classical,
    internal,
    material,
    strong,
)
from .transform import (
    EQ_SUFFIX,
    NEGATIVE_SUFFIX,
    POSITIVE_SUFFIX,
    base_name,
    eq_data_role,
    eq_role,
    neg_transform,
    negative_concept,
    pos_transform,
    positive_concept,
    positive_data_role,
    positive_role,
    transform_axiom,
    cached_transform_kb,
    transform_kb,
)
from .induced import classical_induced, four_induced
from .reasoner4 import BoundedFourValue, Reasoner4
from .defeasible import (
    AdjudicatedFact,
    DefeasibleReasoner4,
    default_stratification4,
)
from .metrics import (
    ConflictProfile,
    conflict_profile,
    inconsistency_degree,
    information_degree,
)

__all__ = [
    "Axiom4",
    "ConceptInclusion4",
    "DatatypeRoleInclusion4",
    "InclusionKind",
    "KnowledgeBase4",
    "RoleInclusion4",
    "Transitivity4",
    "collapse_to_classical",
    "from_classical",
    "internal",
    "material",
    "strong",
    "EQ_SUFFIX",
    "NEGATIVE_SUFFIX",
    "POSITIVE_SUFFIX",
    "base_name",
    "eq_data_role",
    "eq_role",
    "neg_transform",
    "negative_concept",
    "pos_transform",
    "positive_concept",
    "positive_data_role",
    "positive_role",
    "transform_axiom",
    "transform_kb",
    "cached_transform_kb",
    "classical_induced",
    "four_induced",
    "BoundedFourValue",
    "Reasoner4",
    "AdjudicatedFact",
    "DefeasibleReasoner4",
    "default_stratification4",
    "ConflictProfile",
    "conflict_profile",
    "inconsistency_degree",
    "information_degree",
]
