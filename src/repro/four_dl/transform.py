"""The SHOIN(D)4 -> SHOIN(D) transformation (paper Definitions 5-7).

The signature is doubled: every atomic concept ``A`` yields the two
classical concepts ``A+`` (evidence for) and ``A-`` (evidence against);
every role ``R`` yields ``R+`` (positive evidence) and ``R=`` (the
*complement* of the negative evidence, Definition 8).  Two mutually
recursive concept transformations implement Definition 5:

* :func:`pos_transform` computes the overline of ``C`` — the classical
  concept whose extension is ``proj+(C^I)``;
* :func:`neg_transform` computes the overline of ``not C`` — the
  classical concept whose extension is ``proj-(C^I)``.

:func:`transform_kb` applies Definition 6 axiom-by-axiom, producing the
*classical induced KB* of Definition 7, on which any classical reasoner
decides the four-valued problems (Theorem 6, Corollary 7).  The
transformation is linear in the size of the input (each input node is
visited once and emits O(1) output nodes) — the paper's "polynomial time"
claim, measured in ``benchmarks/test_bench_transform_scaling.py``.

Design notes (see DESIGN.md):

* Definition 5 omits ``not Top``/``not Bottom``; Proposition 4 forces
  ``neg(Top) = Bottom`` and ``neg(Bottom) = Top``.
* Definition 5 omits negated nominals.  Our Table 2 evaluator fixes the
  (otherwise unconstrained) negative part of a nominal to the empty set,
  so ``neg({o...}) = Bottom`` keeps the model correspondence exact.
* Individuals keep their names (Definition 6 renames ``a`` to ``a-bar``;
  the renaming is a formality that buys nothing in code).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Tuple, Union

from ..dl import axioms as ax
from ..dl.concepts import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Bottom,
    Concept,
    DataAtLeast,
    DataAtMost,
    DataExists,
    DataForall,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    Top,
)
from ..dl.kb import KnowledgeBase
from ..dl.roles import AtomicRole, DatatypeRole, InverseRole, ObjectRole
from ..obs.spans import span as obs_span
from .axioms4 import (
    ConceptInclusion4,
    DatatypeRoleInclusion4,
    InclusionKind,
    KnowledgeBase4,
    RoleInclusion4,
    Transitivity4,
)

POSITIVE_SUFFIX = "__pos"
NEGATIVE_SUFFIX = "__neg"
EQ_SUFFIX = "__eq"


# ---------------------------------------------------------------------------
# Signature doubling
# ---------------------------------------------------------------------------

def positive_concept(concept: AtomicConcept) -> AtomicConcept:
    """``A+``: the classical concept naming ``proj+(A)``."""
    return AtomicConcept(concept.name + POSITIVE_SUFFIX)

def negative_concept(concept: AtomicConcept) -> AtomicConcept:
    """``A-``: the classical concept naming ``proj-(A)``."""
    return AtomicConcept(concept.name + NEGATIVE_SUFFIX)

def positive_role(role: ObjectRole) -> ObjectRole:
    """``R+``; Definition 5 (19): ``(R-)+ = (R+)-``."""
    if isinstance(role, InverseRole):
        return positive_role(role.role).inverse()
    return AtomicRole(role.name + POSITIVE_SUFFIX)

def eq_role(role: ObjectRole) -> ObjectRole:
    """``R=`` (complement of negative evidence); ``(R-)= = (R=)-``."""
    if isinstance(role, InverseRole):
        return eq_role(role.role).inverse()
    return AtomicRole(role.name + EQ_SUFFIX)

def positive_data_role(role: DatatypeRole) -> DatatypeRole:
    """``U+`` for a datatype role."""
    return DatatypeRole(role.name + POSITIVE_SUFFIX)

def eq_data_role(role: DatatypeRole) -> DatatypeRole:
    """``U=`` for a datatype role."""
    return DatatypeRole(role.name + EQ_SUFFIX)


def base_name(name: str) -> str:
    """Strip a transformation suffix off a generated name."""
    for suffix in (POSITIVE_SUFFIX, NEGATIVE_SUFFIX, EQ_SUFFIX):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


# ---------------------------------------------------------------------------
# Concept transformation (Definition 5)
# ---------------------------------------------------------------------------

def pos_transform(concept: Concept) -> Concept:
    """The overline of ``C``: classical extension equals ``proj+(C^I)``."""
    if isinstance(concept, AtomicConcept):
        return positive_concept(concept)
    if isinstance(concept, Top):
        return TOP
    if isinstance(concept, Bottom):
        return BOTTOM
    if isinstance(concept, Not):
        return neg_transform(concept.operand)
    if isinstance(concept, And):
        return And.of(*(pos_transform(c) for c in concept.operands))
    if isinstance(concept, Or):
        return Or.of(*(pos_transform(c) for c in concept.operands))
    if isinstance(concept, Exists):
        return Exists(positive_role(concept.role), pos_transform(concept.filler))
    if isinstance(concept, Forall):
        return Forall(positive_role(concept.role), pos_transform(concept.filler))
    if isinstance(concept, AtLeast):
        return AtLeast(concept.n, positive_role(concept.role))
    if isinstance(concept, AtMost):
        return AtMost(concept.n, eq_role(concept.role))
    if isinstance(concept, OneOf):
        return concept
    if isinstance(concept, QualifiedAtLeast):
        # SHOIQ extension of Definition 5 clause (9): count positive role
        # evidence toward positively-supported fillers.
        return QualifiedAtLeast(
            concept.n, positive_role(concept.role), pos_transform(concept.filler)
        )
    if isinstance(concept, QualifiedAtMost):
        # Extension of clause (10): count the pairs not excluded by
        # negative role evidence toward fillers not negatively supported.
        return QualifiedAtMost(
            concept.n, eq_role(concept.role), Not(neg_transform(concept.filler))
        )
    if isinstance(concept, DataExists):
        return DataExists(positive_data_role(concept.role), concept.range)
    if isinstance(concept, DataForall):
        return DataForall(positive_data_role(concept.role), concept.range)
    if isinstance(concept, DataAtLeast):
        return DataAtLeast(concept.n, positive_data_role(concept.role))
    if isinstance(concept, DataAtMost):
        return DataAtMost(concept.n, eq_data_role(concept.role))
    raise TypeError(f"unknown concept kind: {concept!r}")


def neg_transform(concept: Concept) -> Concept:
    """The overline of ``not C``: classical extension equals ``proj-(C^I)``."""
    if isinstance(concept, AtomicConcept):
        return negative_concept(concept)
    if isinstance(concept, Top):
        return BOTTOM
    if isinstance(concept, Bottom):
        return TOP
    if isinstance(concept, Not):
        return pos_transform(concept.operand)
    if isinstance(concept, And):
        return Or.of(*(neg_transform(c) for c in concept.operands))
    if isinstance(concept, Or):
        return And.of(*(neg_transform(c) for c in concept.operands))
    if isinstance(concept, Exists):
        return Forall(positive_role(concept.role), neg_transform(concept.filler))
    if isinstance(concept, Forall):
        return Exists(positive_role(concept.role), neg_transform(concept.filler))
    if isinstance(concept, AtLeast):
        if concept.n == 0:
            return BOTTOM
        return AtMost(concept.n - 1, eq_role(concept.role))
    if isinstance(concept, AtMost):
        return AtLeast(concept.n + 1, positive_role(concept.role))
    if isinstance(concept, OneOf):
        # The Table 2 evaluator fixes a nominal's negative part to {}.
        return BOTTOM
    if isinstance(concept, QualifiedAtLeast):
        # Extension of clause (16).
        if concept.n == 0:
            return BOTTOM
        return QualifiedAtMost(
            concept.n - 1,
            eq_role(concept.role),
            Not(neg_transform(concept.filler)),
        )
    if isinstance(concept, QualifiedAtMost):
        # Extension of clause (17).
        return QualifiedAtLeast(
            concept.n + 1,
            positive_role(concept.role),
            pos_transform(concept.filler),
        )
    if isinstance(concept, DataExists):
        return DataForall(positive_data_role(concept.role), concept.range.negate())
    if isinstance(concept, DataForall):
        return DataExists(positive_data_role(concept.role), concept.range.negate())
    if isinstance(concept, DataAtLeast):
        if concept.n == 0:
            return BOTTOM
        return DataAtMost(concept.n - 1, eq_data_role(concept.role))
    if isinstance(concept, DataAtMost):
        return DataAtLeast(concept.n + 1, positive_data_role(concept.role))
    raise TypeError(f"unknown concept kind: {concept!r}")


# ---------------------------------------------------------------------------
# Axiom transformation (Definition 6)
# ---------------------------------------------------------------------------

Axiom4OrAssertion = Union[
    ConceptInclusion4,
    RoleInclusion4,
    DatatypeRoleInclusion4,
    Transitivity4,
    ax.ABoxAxiom,
]


def transform_axiom(axiom: Axiom4OrAssertion) -> Iterator[ax.Axiom]:
    """The classical axioms induced by one SHOIN(D)4 axiom."""
    if isinstance(axiom, ConceptInclusion4):
        if axiom.kind is InclusionKind.MATERIAL:
            yield ax.ConceptInclusion(
                Not(neg_transform(axiom.sub)), pos_transform(axiom.sup)
            )
        elif axiom.kind is InclusionKind.INTERNAL:
            yield ax.ConceptInclusion(
                pos_transform(axiom.sub), pos_transform(axiom.sup)
            )
        else:
            yield ax.ConceptInclusion(
                pos_transform(axiom.sub), pos_transform(axiom.sup)
            )
            yield ax.ConceptInclusion(
                neg_transform(axiom.sup), neg_transform(axiom.sub)
            )
    elif isinstance(axiom, RoleInclusion4):
        if axiom.kind is InclusionKind.MATERIAL:
            yield ax.RoleInclusion(eq_role(axiom.sub), positive_role(axiom.sup))
        elif axiom.kind is InclusionKind.INTERNAL:
            yield ax.RoleInclusion(
                positive_role(axiom.sub), positive_role(axiom.sup)
            )
        else:
            yield ax.RoleInclusion(
                positive_role(axiom.sub), positive_role(axiom.sup)
            )
            yield ax.RoleInclusion(eq_role(axiom.sub), eq_role(axiom.sup))
    elif isinstance(axiom, DatatypeRoleInclusion4):
        if axiom.kind is InclusionKind.MATERIAL:
            yield ax.DatatypeRoleInclusion(
                eq_data_role(axiom.sub), positive_data_role(axiom.sup)
            )
        elif axiom.kind is InclusionKind.INTERNAL:
            yield ax.DatatypeRoleInclusion(
                positive_data_role(axiom.sub), positive_data_role(axiom.sup)
            )
        else:
            yield ax.DatatypeRoleInclusion(
                positive_data_role(axiom.sub), positive_data_role(axiom.sup)
            )
            yield ax.DatatypeRoleInclusion(
                eq_data_role(axiom.sub), eq_data_role(axiom.sup)
            )
    elif isinstance(axiom, Transitivity4):
        named = positive_role(axiom.role)
        assert isinstance(named, AtomicRole)
        yield ax.Transitivity(named)
    elif isinstance(axiom, ax.ConceptAssertion):
        yield ax.ConceptAssertion(axiom.individual, pos_transform(axiom.concept))
    elif isinstance(axiom, ax.RoleAssertion):
        yield ax.RoleAssertion(
            positive_role(axiom.role), axiom.source, axiom.target
        )
    elif isinstance(axiom, ax.NegativeRoleAssertion):
        # (a, b) in proj-(R)  <=>  (a, b) outside the classical R= half.
        yield ax.NegativeRoleAssertion(
            eq_role(axiom.role), axiom.source, axiom.target
        )
    elif isinstance(axiom, ax.DataAssertion):
        yield ax.DataAssertion(
            positive_data_role(axiom.role), axiom.source, axiom.value
        )
    elif isinstance(axiom, (ax.SameIndividual, ax.DifferentIndividuals)):
        yield axiom
    else:
        raise TypeError(f"not a SHOIN(D)4 axiom: {axiom!r}")


def transform_kb(kb4: KnowledgeBase4) -> KnowledgeBase:
    """The classical induced KB of Definition 7."""
    classical = KnowledgeBase()
    for axiom in kb4.axioms():
        classical.add(*transform_axiom(axiom))
    return classical


#: induced classical axiom -> the KB4 axioms it was induced by.
ProvenanceMap = Dict[ax.Axiom, Tuple[Axiom4OrAssertion, ...]]


def transform_kb_with_provenance(
    kb4: KnowledgeBase4,
) -> Tuple[KnowledgeBase, ProvenanceMap]:
    """The induced KB plus a map from induced axioms back to sources.

    The map keys each classical axiom by the exact object the induced
    :class:`~repro.dl.kb.KnowledgeBase` stores (role assertions are
    normalised, matching ``KnowledgeBase.add``), and its values are every
    KB4 axiom that induced it — a tuple because distinct four-valued
    axioms can induce the same classical axiom (e.g. an internal and a
    strong inclusion share their ``C+ [= D+`` half).  This is how an
    unsat core over the induced KB is cited back as *original* KB4
    axioms with their Table 3 inclusion strength.
    """
    classical = KnowledgeBase()
    provenance: Dict[ax.Axiom, List[Axiom4OrAssertion]] = {}
    for axiom in kb4.axioms():
        for induced_axiom in transform_axiom(axiom):
            classical.add(induced_axiom)
            if isinstance(
                induced_axiom, (ax.RoleAssertion, ax.NegativeRoleAssertion)
            ):
                induced_axiom = induced_axiom.normalised()
            sources = provenance.setdefault(induced_axiom, [])
            if axiom not in sources:
                sources.append(axiom)
    return classical, {
        key: tuple(sources) for key, sources in provenance.items()
    }


def cached_transform_kb(kb4: KnowledgeBase4) -> KnowledgeBase:
    """The induced KB, transformed at most once per KB4 version.

    The result is memoised on the KB4 instance keyed by its mutation
    counter, so any number of :class:`~repro.four_dl.reasoner4.Reasoner4`
    views (and repeated reasoner rebuilds after mutations) share one
    transformation per KB4 state.  When the KB4's change log can name
    the net mutation delta, the memoised induced KB is *updated in
    place* through its own ``add_axiom``/``remove_axiom`` API — the
    object identity is preserved and the induced KB's own change log
    records the delta, which is what lets the delegated classical
    reasoner invalidate fine-grained instead of wholesale.  Callers
    must otherwise treat the returned KB as read-only.

    Abort-safety: the transformation is purely syntactic — it runs no
    tableau and checks no budget — so a budget abort can never happen
    while this memo is being populated; aborted reasoning cannot poison
    it (see the audit note in :mod:`repro.dl.cache`).
    """
    return _cached_transform(kb4)[0]


def cached_transform_provenance(kb4: KnowledgeBase4) -> ProvenanceMap:
    """The provenance map of :func:`cached_transform_kb`'s result."""
    return _cached_transform(kb4)[1]


def _provenance_key(induced_axiom: ax.Axiom) -> ax.Axiom:
    """The stored-form key under which provenance tracks an induced axiom."""
    if isinstance(induced_axiom, (ax.RoleAssertion, ax.NegativeRoleAssertion)):
        return induced_axiom.normalised()
    return induced_axiom


def _apply_induced_delta(
    kb4: KnowledgeBase4,
    since_version: int,
    induced: KnowledgeBase,
    provenance: Dict[ax.Axiom, Tuple[Axiom4OrAssertion, ...]],
) -> bool:
    """Replay a KB4 mutation delta onto the memoised induced KB.

    Returns ``False`` when the change-log window was exceeded (caller
    falls back to a full re-transform).  Each net-removed KB4 axiom
    removes one copy of each classical axiom it induced (the induced KB
    is a multiset, so shared inductions from other sources survive);
    provenance sources are dropped only when the source axiom has no
    copy left in the KB4.
    """
    delta = kb4.delta_since(since_version)
    if delta is None:
        return False
    added, removed = delta
    if not added and not removed:
        return True
    with obs_span("transform") as span:
        span.set("axioms_in", len(added) + len(removed))
        span.set("incremental", True)
        for source in sorted(removed, key=repr):
            gone = not all(
                kb4._count(concrete) > 0
                for concrete in kb4._expanded(source)
            )
            for induced_axiom in transform_axiom(source):
                induced.remove_axiom(induced_axiom)
                if not gone:
                    continue
                key = _provenance_key(induced_axiom)
                sources = provenance.get(key, ())
                if source in sources:
                    remaining = tuple(s for s in sources if s != source)
                    if remaining:
                        provenance[key] = remaining
                    else:
                        provenance.pop(key, None)
        for source in sorted(added, key=repr):
            for induced_axiom in transform_axiom(source):
                induced.add(induced_axiom)
                key = _provenance_key(induced_axiom)
                sources = provenance.get(key, ())
                if source not in sources:
                    provenance[key] = sources + (source,)
        span.set("axioms_out", len(induced))
    return True


#: Serialises memo population/patching: the long-lived service answers
#: concurrent requests over shared KB4 objects, and two threads racing
#: the first transform (or an incremental replay) would otherwise
#: interleave in-place mutations of the same induced KB.  Reads of an
#: up-to-date memo still pay the lock, but the hit path is a version
#: compare — nanoseconds against the milliseconds a transform costs.
_TRANSFORM_MEMO_LOCK = threading.RLock()


def _cached_transform(
    kb4: KnowledgeBase4,
) -> Tuple[KnowledgeBase, ProvenanceMap]:
    with _TRANSFORM_MEMO_LOCK:
        return _cached_transform_locked(kb4)


def _cached_transform_locked(
    kb4: KnowledgeBase4,
) -> Tuple[KnowledgeBase, ProvenanceMap]:
    cached = getattr(kb4, "_induced_cache", None)
    if cached is not None:
        version, induced, provenance = cached
        if version == kb4.version:
            return induced, provenance
        try:
            applied = _apply_induced_delta(kb4, version, induced, provenance)
        except ValueError:
            # A desynchronised memo (e.g. a caller mutated the induced
            # KB directly) fails the strict removal; rebuild from
            # scratch rather than guessing.
            applied = False
        if applied:
            kb4._induced_cache = (kb4.version, induced, provenance)
            return induced, provenance
    # The memoised fast path above is span-free: only actual transform
    # work shows up as a ``transform`` phase in profiles.
    with obs_span("transform") as span:
        span.set("axioms_in", len(kb4))
        induced, provenance = transform_kb_with_provenance(kb4)
        span.set("axioms_out", len(induced))
        kb4._induced_cache = (kb4.version, induced, provenance)
    return induced, provenance
