"""Execute an eval suite into an isolated, self-validating run directory.

``run_suite`` is the engine behind ``repro eval run``: it times every
probe of a suite (fresh state per repeat), then writes::

    eval/results/<run-id>/
        manifest.json     config snapshot, seed, git rev, environment
        metrics.jsonl     one schema-versioned record per probe
        SUMMARY.md        the human rendering (tables + probe blocks)
        BENCH_<suite>.json  perf-trajectory record (repro.obs.bench shape)

and **self-validates** the directory against the schemas in
:mod:`repro.eval.manifest` before reporting success — a run that cannot
be re-read by ``scripts/check_manifest_schema.py`` raises
:class:`EvalRunError` instead of exiting 0.  The same BENCH record is
additionally written to ``$REPRO_BENCH_OUT`` when set, feeding the
committed trajectory under ``benchmarks/trajectory/``.
"""

from __future__ import annotations

import datetime as _dt
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs.bench import BenchRecord, maybe_write_bench_record, write_bench_record
from ..obs.metrics import percentile
from .manifest import (
    METRIC_SCHEMA_VERSION,
    build_manifest,
    read_metrics_jsonl,
    validate_manifest,
)
from .spec import EvalSettings, Probe, ProbeResult, Suite, get_suite

__all__ = ["EvalRunError", "ProbeMetric", "RunResult", "run_suite"]


class EvalRunError(RuntimeError):
    """A run directory failed its own schema validation (or bad usage)."""


@dataclass
class ProbeMetric:
    """One executed probe: its result plus the timing summary."""

    probe: Probe
    result: ProbeResult
    samples: List[float] = field(default_factory=list)

    def seconds_summary(self) -> Dict[str, float]:
        samples = self.samples
        return {
            "count": len(samples),
            "total": sum(samples),
            "mean": sum(samples) / len(samples) if samples else 0.0,
            "p50": percentile(samples, 0.5),
            "p95": percentile(samples, 0.95),
            "max": max(samples) if samples else 0.0,
        }

    def record(self, suite: str, seed: int) -> Dict[str, object]:
        """The ``metrics.jsonl`` record of this probe."""
        return {
            "schema": METRIC_SCHEMA_VERSION,
            "suite": suite,
            "probe": self.probe.name,
            "phase": self.probe.phase,
            "seed": seed,
            "status": self.result.status,
            "seconds": self.seconds_summary(),
            "counters": dict(self.result.counters),
            "extra": dict(self.result.extra),
        }


@dataclass
class RunResult:
    """Where a run landed and how it went."""

    run_id: str
    suite: str
    directory: Path
    metrics: List[ProbeMetric]
    bench_path: Path

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def metrics_path(self) -> Path:
        return self.directory / "metrics.jsonl"

    @property
    def summary_path(self) -> Path:
        return self.directory / "SUMMARY.md"

    @property
    def failed_probes(self) -> List[str]:
        return [m.probe.name for m in self.metrics if m.result.status == "fail"]

    @property
    def unknown_probes(self) -> List[str]:
        return [
            m.probe.name for m in self.metrics if m.result.status == "unknown"
        ]


def _unique_run_dir(out_root: Path, suite: str, seed: int) -> Path:
    stamp = _dt.datetime.now(_dt.timezone.utc).strftime("%Y%m%dT%H%M%S")
    base = f"{suite}-seed{seed}-{stamp}"
    candidate = out_root / base
    counter = 2
    while candidate.exists():
        candidate = out_root / f"{base}-{counter}"
        counter += 1
    return candidate


def _execute(probe: Probe, seed: int, repeats: Optional[int]) -> ProbeMetric:
    count = repeats if repeats is not None else probe.repeats
    samples: List[float] = []
    result: Optional[ProbeResult] = None
    for index in range(max(1, count)):
        start = time.perf_counter()
        outcome = probe.run(seed)
        samples.append(time.perf_counter() - start)
        if index == 0:
            # The deterministic payload comes from the cold repeat;
            # later repeats only contribute timing samples.
            result = outcome
    assert result is not None
    return ProbeMetric(probe=probe, result=result, samples=samples)


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def _render_summary(
    run_id: str,
    suite: Suite,
    seed: int,
    metrics: Sequence[ProbeMetric],
    manifest: Dict[str, object],
) -> str:
    git = manifest.get("git", {})
    environment = manifest.get("environment", {})
    lines = [
        f"# Eval run `{run_id}`",
        "",
        f"- **suite:** `{suite.name}` — {suite.description}",
        f"- **seed:** {seed}",
        f"- **git:** `{git.get('rev') or 'unknown'}`"
        + (" (dirty)" if git.get("dirty") else ""),
        f"- **python:** {environment.get('python')} on "
        f"{environment.get('platform')}",
        f"- **created:** {manifest.get('created')}",
        "",
        "Regenerate with "
        f"`repro eval run --suite {suite.name} --seed {seed}` "
        "(timings are machine-local; every other field is deterministic).",
        "",
        "## Probes",
        "",
        "| probe | phase | status | p50 ms | p95 ms | repeats |",
        "|---|---|---|---:|---:|---:|",
    ]
    for metric in metrics:
        seconds = metric.seconds_summary()
        lines.append(
            f"| {metric.probe.name} | {metric.probe.phase} "
            f"| {metric.result.status} | {_format_ms(seconds['p50'])} "
            f"| {_format_ms(seconds['p95'])} | {seconds['count']} |"
        )
    blocks = [m for m in metrics if m.result.summary]
    if blocks:
        lines += ["", "## Probe reports", ""]
        for metric in blocks:
            lines += [
                f"### {metric.probe.name}",
                "",
                "```",
                metric.result.summary.rstrip(),
                "```",
                "",
            ]
    return "\n".join(lines).rstrip() + "\n"


def _self_validate(result: RunResult) -> List[str]:
    """Re-read the run directory through the public schemas."""
    problems: List[str] = []
    try:
        manifest = json.loads(result.manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"manifest.json unreadable: {error}"]
    problems += [f"manifest.json: {p}" for p in validate_manifest(manifest)]
    try:
        records = read_metrics_jsonl(result.metrics_path.read_text())
    except (OSError, ValueError) as error:
        problems.append(f"metrics.jsonl: {error}")
        records = []
    if records and manifest.get("probes"):
        recorded = [r["probe"] for r in records]
        if recorded != list(manifest["probes"]):
            problems.append(
                "metrics.jsonl probes disagree with the manifest probe list"
            )
    try:
        if not result.summary_path.read_text().strip():
            problems.append("SUMMARY.md is empty")
    except OSError as error:
        problems.append(f"SUMMARY.md unreadable: {error}")
    return problems


def run_suite(
    suite_name: str,
    out_root: str = "eval/results",
    seed: int = 0,
    repeats: Optional[int] = None,
    scale: bool = False,
    only: Optional[Sequence[str]] = None,
    echo=None,
) -> RunResult:
    """Run a suite into ``out_root/<run-id>/`` and self-validate it.

    ``repeats`` overrides every probe's repeat hint; ``only`` restricts
    to the named probes; ``echo`` (e.g. ``print``) receives one progress
    line per probe.  Raises :class:`EvalRunError` on unknown suites or
    probes, a suite needing ``--scale`` without it, or a run directory
    that fails self-validation — so a zero exit always means a valid,
    re-readable artefact.
    """
    try:
        suite = get_suite(suite_name)
    except KeyError as error:
        raise EvalRunError(str(error)) from None
    if suite.needs_scale and not scale:
        raise EvalRunError(
            f"suite {suite.name!r} generates 10^4+-axiom corpora; "
            f"pass --scale to confirm"
        )
    probes = suite.build(EvalSettings(seed=seed, scale=scale))
    if only:
        known = {probe.name for probe in probes}
        missing = sorted(set(only) - known)
        if missing:
            raise EvalRunError(
                f"unknown probes: {', '.join(missing)}; "
                f"available: {', '.join(sorted(known))}"
            )
        probes = [probe for probe in probes if probe.name in only]

    metrics: List[ProbeMetric] = []
    for probe in probes:
        metric = _execute(probe, seed, repeats)
        metrics.append(metric)
        if echo is not None:
            seconds = metric.seconds_summary()
            echo(
                f"  {probe.name:40s} {metric.result.status:8s} "
                f"p95={_format_ms(seconds['p95'])}ms"
            )

    out = Path(out_root)
    directory = _unique_run_dir(out, suite.name, seed)
    directory.mkdir(parents=True, exist_ok=False)
    run_id = directory.name
    created = _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds")
    manifest = build_manifest(
        run_id=run_id,
        suite=suite.name,
        description=suite.description,
        seed=seed,
        repeats=repeats,
        scale=scale,
        created=created,
        probes=[metric.probe.name for metric in metrics],
    )
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    (directory / "metrics.jsonl").write_text(
        "".join(
            json.dumps(metric.record(suite.name, seed), sort_keys=True) + "\n"
            for metric in metrics
        )
    )

    bench = BenchRecord(
        name=suite.name,
        workload=suite.description,
        seconds=[metric.seconds_summary()["total"] for metric in metrics],
        counters=_aggregate_counters(metrics),
        metadata={
            "run_id": run_id,
            "suite": suite.name,
            "seed": str(seed),
            "probes": str(len(metrics)),
            "statuses": ",".join(
                sorted({metric.result.status for metric in metrics})
            ),
        },
    )
    bench_path = Path(write_bench_record(bench, str(directory)))
    maybe_write_bench_record(bench)  # honour $REPRO_BENCH_OUT too

    result = RunResult(
        run_id=run_id,
        suite=suite.name,
        directory=directory,
        metrics=metrics,
        bench_path=bench_path,
    )
    (directory / "SUMMARY.md").write_text(
        _render_summary(run_id, suite, seed, metrics, manifest)
    )
    problems = _self_validate(result)
    if problems:
        raise EvalRunError(
            "run directory failed self-validation:\n  "
            + "\n  ".join(problems)
        )
    return result


def _aggregate_counters(metrics: Sequence[ProbeMetric]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for metric in metrics:
        for name, value in metric.result.counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals
