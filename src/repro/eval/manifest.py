"""Run manifests and metric records: the schemas of an eval run directory.

Every ``repro eval run`` writes an isolated ``eval/results/<run-id>/``
directory whose contents are machine-readable and schema-versioned:

* ``manifest.json`` — one JSON object snapshotting everything needed to
  re-run the suite: suite name, seed, repeats, the probe list, the git
  revision, and the python/platform environment (schema
  :data:`MANIFEST_SCHEMA_VERSION`, fields :data:`MANIFEST_FIELDS`);
* ``metrics.jsonl`` — one JSON object per probe (schema
  :data:`METRIC_SCHEMA_VERSION`, fields :data:`METRIC_FIELDS`).  All
  wall-clock measurements live under the single ``seconds`` key
  (:data:`TIMING_FIELDS`), so two runs of the same suite with the same
  seed agree byte-for-byte after :func:`strip_timing` — the determinism
  contract ``scripts/check_manifest_schema.py`` and the tests enforce.

The validators mirror ``repro.obs.export.validate_span_record``: they
return a list of problems (empty = valid) instead of raising, so CI can
report every defect of a dump in one pass.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Dict, List, Optional, Sequence

from ..obs.bench import BENCH_SCHEMA_VERSION
from ..obs.export import SPAN_SCHEMA_VERSION

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "METRIC_SCHEMA_VERSION",
    "MANIFEST_FIELDS",
    "METRIC_FIELDS",
    "TIMING_FIELDS",
    "METRIC_STATUSES",
    "build_manifest",
    "git_revision",
    "validate_manifest",
    "validate_metric_record",
    "strip_timing",
    "read_metrics_jsonl",
]

#: Bumped whenever a manifest field is added/renamed.
MANIFEST_SCHEMA_VERSION = 1

#: Bumped whenever a metric-record field is added/renamed.
METRIC_SCHEMA_VERSION = 1

#: Required fields of ``manifest.json`` and their types.
MANIFEST_FIELDS = {
    "schema": int,
    "run_id": str,
    "suite": str,
    "description": str,
    "seed": int,
    "repeats": (int, type(None)),
    "scale": bool,
    "created": str,
    "probes": list,
    "git": dict,
    "environment": dict,
    "schema_versions": dict,
}

#: Required fields of one ``metrics.jsonl`` record and their types.
METRIC_FIELDS = {
    "schema": int,
    "suite": str,
    "probe": str,
    "phase": str,
    "seed": int,
    "status": str,
    "seconds": dict,
    "counters": dict,
    "extra": dict,
}

#: Metric-record keys holding wall-clock measurements; everything else
#: must be identical across same-seed runs (the determinism contract).
TIMING_FIELDS = ("seconds",)

#: Allowed ``status`` values: ``ok`` (measured and correct), ``fail``
#: (the probe's own correctness assertion failed), ``unknown`` (the
#: probe degraded within its reasoning budget — recorded, not hidden).
METRIC_STATUSES = frozenset({"ok", "fail", "unknown"})

#: Required keys of the ``seconds`` summary block.
_SECONDS_KEYS = frozenset({"count", "total", "mean", "p50", "p95", "max"})


def git_revision(repo_root: Optional[str] = None) -> Dict[str, object]:
    """The current git revision and dirtiness, or ``None`` fields.

    Never raises: an eval run outside a checkout (or without git on
    PATH) still produces a valid manifest, just an unpinned one.
    """
    cwd = repo_root or os.getcwd()
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return {"rev": None, "dirty": None}
    if rev.returncode != 0:
        return {"rev": None, "dirty": None}
    return {
        "rev": rev.stdout.strip(),
        "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
    }


def build_manifest(
    run_id: str,
    suite: str,
    description: str,
    seed: int,
    repeats: Optional[int],
    scale: bool,
    created: str,
    probes: Sequence[str],
    repo_root: Optional[str] = None,
) -> Dict[str, object]:
    """The ``manifest.json`` object for one run (already schema-valid)."""
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "run_id": run_id,
        "suite": suite,
        "description": description,
        "seed": seed,
        "repeats": repeats,
        "scale": scale,
        "created": created,
        "probes": list(probes),
        "git": git_revision(repo_root),
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "schema_versions": {
            "manifest": MANIFEST_SCHEMA_VERSION,
            "metric": METRIC_SCHEMA_VERSION,
            "bench": BENCH_SCHEMA_VERSION,
            "span": SPAN_SCHEMA_VERSION,
        },
    }


def _check_fields(record: Dict, fields: Dict) -> List[str]:
    problems = []
    for name, expected in fields.items():
        if name not in record:
            problems.append(f"missing field {name!r}")
        elif not isinstance(record[name], expected):
            problems.append(
                f"field {name!r} has type {type(record[name]).__name__}"
            )
    return problems


def validate_manifest(record: object) -> List[str]:
    """Schema problems of a parsed ``manifest.json`` (empty = valid)."""
    if not isinstance(record, dict):
        return ["manifest is not a JSON object"]
    problems = _check_fields(record, MANIFEST_FIELDS)
    if record.get("schema") not in (None, MANIFEST_SCHEMA_VERSION):
        problems.append(f"unknown schema version {record.get('schema')!r}")
    probes = record.get("probes")
    if isinstance(probes, list):
        if not probes:
            problems.append("empty probe list")
        for index, probe in enumerate(probes):
            if not isinstance(probe, str):
                problems.append(f"probe #{index} is not a string")
    environment = record.get("environment")
    if isinstance(environment, dict) and "python" not in environment:
        problems.append("environment missing 'python'")
    git = record.get("git")
    if isinstance(git, dict) and "rev" not in git:
        problems.append("git block missing 'rev'")
    return problems


def validate_metric_record(record: object) -> List[str]:
    """Schema problems of one parsed ``metrics.jsonl`` line (empty = valid)."""
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    problems = _check_fields(record, METRIC_FIELDS)
    if record.get("schema") not in (None, METRIC_SCHEMA_VERSION):
        problems.append(f"unknown schema version {record.get('schema')!r}")
    status = record.get("status")
    if isinstance(status, str) and status not in METRIC_STATUSES:
        problems.append(f"unknown status {status!r}")
    seconds = record.get("seconds")
    if isinstance(seconds, dict):
        missing = _SECONDS_KEYS - set(seconds)
        if missing:
            problems.append(
                f"seconds block missing {', '.join(sorted(missing))}"
            )
        for key, value in seconds.items():
            if not isinstance(value, (int, float)):
                problems.append(f"seconds[{key!r}] is not numeric")
            elif value < 0:
                problems.append(f"seconds[{key!r}] is negative")
    counters = record.get("counters")
    if isinstance(counters, dict):
        for key, value in counters.items():
            if not isinstance(value, int):
                problems.append(f"counter {key!r} is not an integer")
    return problems


def strip_timing(record: Dict) -> Dict:
    """The record without its wall-clock fields (determinism compare)."""
    return {
        key: value for key, value in record.items() if key not in TIMING_FIELDS
    }


def read_metrics_jsonl(text: str) -> List[Dict]:
    """Parse a ``metrics.jsonl`` dump, raising ``ValueError`` on defects."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {line_number}: not JSON ({error})") from None
        problems = validate_metric_record(record)
        if problems:
            raise ValueError(f"line {line_number}: {'; '.join(problems)}")
        records.append(record)
    return records
