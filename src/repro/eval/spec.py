"""Declarative eval suites: named probes grouped into runnable specs.

A **probe** is one named, phased measurement — a callable the runner
times (``repeats`` times, fresh state each repeat) whose
:class:`ProbeResult` carries the deterministic payload of the metric
record: a status, work counters, and JSON-able extras.  A **suite** is a
named list of probes built from :class:`EvalSettings` (seed, ``--scale``
opt-in), so the same spec scales from CI-sized to million-axiom runs.

Determinism contract: everything a probe returns must be a pure
function of ``(suite, settings)`` — no wall-clock, no unseeded
randomness.  Reasoning probes that can blow up therefore use *node/
branch* budgets (deterministic abort points), never wall-clock
deadlines; a probe that degrades reports ``status="unknown"`` with its
``budget_aborts`` counters rather than hiding the miss.  The runner
checks the contract by re-running ``metrics.jsonl`` comparisons in the
test suite (same seed, timing fields stripped, byte-identical).

Built-in suites (:data:`ALL_SUITES`):

* ``paper`` — every EXPERIMENTS.md artefact via
  :mod:`repro.harness.experiments`, one probe per experiment;
* ``classification`` — parse/transform/classify/query-battery probes on
  the shipped university ontology (the PR 1/PR 2 optimisation story),
  plus an ``edit_workload`` probe that mutates the KB once and demands
  the warm re-query do strictly less work than the cold start while
  cache entries demonstrably survive (fine-grained invalidation);
* ``scaling_small`` — the generated scaling corpus at CI-friendly sizes
  (10^3), all four inconsistency profiles, plus decided satisfiability
  probes at tableau-feasible size;
* ``scaling_large`` — the 10^4-10^6 end (requires ``--scale``):
  generate/parse/transform sweeps plus work-budgeted satisfiability
  probes at 10^4 axioms and a full classification probe on the
  tbox_heavy profile — both decided in-budget by the saturation fast
  path (:mod:`repro.dl.saturation`), which closed the honest-UNKNOWN
  gap the suite used to record here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = [
    "EvalSettings",
    "Probe",
    "ProbeResult",
    "Suite",
    "ALL_SUITES",
    "get_suite",
]

#: Repo root when running from a source checkout (ontologies/ lives here).
_REPO_ROOT = Path(__file__).resolve().parents[3]


@dataclass(frozen=True)
class EvalSettings:
    """The knobs a suite is built from."""

    seed: int = 0
    scale: bool = False


@dataclass
class ProbeResult:
    """The deterministic payload of one probe execution."""

    status: str = "ok"
    counters: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    #: Optional human-readable block appended to the run's SUMMARY.md.
    summary: str = ""


@dataclass(frozen=True)
class Probe:
    """One named measurement: the runner times ``run(seed)``."""

    name: str
    phase: str
    run: Callable[[int], ProbeResult]
    repeats: int = 1


@dataclass(frozen=True)
class Suite:
    """A named probe list; ``build`` may consult seed and ``--scale``."""

    name: str
    description: str
    build: Callable[[EvalSettings], List[Probe]]
    #: Suites needing --scale refuse to build without it.
    needs_scale: bool = False


def _university_path() -> Path:
    local = Path("ontologies") / "university.kb4"
    if local.exists():
        return local
    return _REPO_ROOT / "ontologies" / "university.kb4"


# ---------------------------------------------------------------------------
# paper: the EXPERIMENTS.md battery as probes
# ---------------------------------------------------------------------------

def _paper_probes(settings: EvalSettings) -> List[Probe]:
    from ..harness.experiments import ALL_EXPERIMENTS

    def probe_for(name: str, fn) -> Probe:
        def run(seed: int) -> ProbeResult:
            result = fn()
            return ProbeResult(
                status="ok" if result.passed else "fail",
                counters={"rows": len(result.rows)},
                # The experiments pin their own seeds (paper fidelity);
                # the suite seed is recorded but intentionally unused.
                # result.note can embed measured timings, so it goes to
                # the SUMMARY block only, never the deterministic record.
                extra={"passed": result.passed},
                summary=result.render(),
            )

        return Probe(name=name, phase="experiment", run=run)

    return [probe_for(name, fn) for name, fn in ALL_EXPERIMENTS.items()]


# ---------------------------------------------------------------------------
# classification: the shipped university ontology, phase by phase
# ---------------------------------------------------------------------------

def _classification_probes(settings: EvalSettings) -> List[Probe]:
    from ..dl.parser import parse_kb4
    from ..dl.reasoner import Reasoner
    from ..four_dl.axioms4 import InclusionKind, collapse_to_classical
    from ..four_dl.reasoner4 import Reasoner4
    from ..four_dl.transform import transform_kb

    text = _university_path().read_text()
    kb4 = parse_kb4(text)
    induced = transform_kb(kb4)

    def parse_probe(seed: int) -> ProbeResult:
        parsed = parse_kb4(text)
        return ProbeResult(counters={"axioms": len(parsed)})

    def transform_probe(seed: int) -> ProbeResult:
        result = transform_kb(parse_kb4(text))
        return ProbeResult(
            counters={"axioms": len(kb4), "induced_axioms": len(result)}
        )

    def traversal_probe(seed: int) -> ProbeResult:
        reasoner = Reasoner(induced)
        hierarchy = reasoner.classify()
        return ProbeResult(
            status="ok" if len(hierarchy) else "fail",
            counters=reasoner.stats.as_dict(),
            extra={"concepts": len(hierarchy)},
        )

    def pairwise_probe(seed: int) -> ProbeResult:
        reasoner = Reasoner(induced, use_cache=False)
        hierarchy = reasoner.classify_pairwise()
        return ProbeResult(
            status="ok" if len(hierarchy) else "fail",
            counters=reasoner.stats.as_dict(),
            extra={"concepts": len(hierarchy)},
        )

    def classify4_probe(seed: int) -> ProbeResult:
        reasoner = Reasoner4(parse_kb4(text))
        hierarchy = reasoner.classify(kind=InclusionKind.INTERNAL)
        return ProbeResult(
            status="ok" if len(hierarchy) else "fail",
            counters=reasoner.stats.as_dict(),
            extra={"concepts": len(hierarchy)},
        )

    def query_battery_probe(seed: int) -> ProbeResult:
        reasoner = Reasoner4(parse_kb4(text))
        atoms = sorted(kb4.concepts_in_signature(), key=lambda a: a.name)[:6]
        individuals = sorted(
            kb4.individuals_in_signature(), key=lambda i: i.name
        )[:4]
        pairs = [(i, a) for i in individuals for a in atoms]
        first = reasoner.assertion_values(pairs)
        second = reasoner.assertion_values(pairs)
        values = {str(v) for v in first.values()}
        return ProbeResult(
            status="ok" if first == second else "fail",
            counters=reasoner.stats.as_dict(),
            extra={"probes": len(pairs), "values_seen": sorted(values)},
        )

    def edit_workload_probe(seed: int) -> ProbeResult:
        # Mutate-then-requery: a long-lived reasoner absorbs a single
        # ABox edit via fine-grained invalidation.  The probe fails
        # unless (a) the warm re-classification does strictly less
        # reasoning work than the cold start, (b) some cache entries
        # actually survived the edit, and (c) the warm hierarchy is
        # byte-identical to a reasoner built cold over the edited KB.
        from ..dl.axioms import ConceptAssertion
        from ..dl.concepts import AtomicConcept
        from ..dl.individuals import Individual

        kb = parse_kb4(text)
        reasoner = Reasoner4(kb)
        reasoner.classify(kind=InclusionKind.INTERNAL)
        cold = reasoner.stats.snapshot()
        edit = ConceptAssertion(Individual("freshStudent42"), AtomicConcept("Course"))
        kb.add_axiom(edit)
        warm_hierarchy = reasoner.classify(kind=InclusionKind.INTERNAL)
        delta = reasoner.stats - cold
        fresh = Reasoner4(parse_kb4(text).add_axiom(edit))
        fresh_hierarchy = fresh.classify(kind=InclusionKind.INTERNAL)
        cold_work = cold.tableau_runs + cold.saturation_queries
        warm_work = delta.tableau_runs + delta.saturation_queries
        survived = delta.cache_entries_survived
        ok = (
            warm_work < cold_work
            and survived > 0
            and warm_hierarchy == fresh_hierarchy
        )
        return ProbeResult(
            status="ok" if ok else "fail",
            counters=reasoner.stats.as_dict(),
            extra={
                "cold_work": cold_work,
                "warm_work": warm_work,
                "cache_entries_survived": survived,
                "fine_invalidations": delta.fine_invalidations,
                "resaturation_cone": delta.resaturation_cone_size,
                "hierarchy_matches_cold_rebuild": (
                    warm_hierarchy == fresh_hierarchy
                ),
            },
        )

    def satisfiability_probe(seed: int) -> ProbeResult:
        reasoner = Reasoner4(parse_kb4(text))
        four = reasoner.is_satisfiable()
        classical = Reasoner(collapse_to_classical(kb4)).is_consistent()
        return ProbeResult(
            status="ok" if four else "fail",
            counters=reasoner.stats.as_dict(),
            extra={"four_valued_sat": four, "classical_consistent": classical},
        )

    return [
        Probe("parse", "parse", parse_probe, repeats=3),
        Probe("transform", "transform", transform_probe, repeats=3),
        Probe("classify_traversal", "classify", traversal_probe, repeats=3),
        Probe("classify_pairwise", "classify", pairwise_probe),
        Probe("classify4_internal", "classify", classify4_probe),
        Probe("query_battery_cached", "query", query_battery_probe, repeats=3),
        Probe("edit_workload", "incremental", edit_workload_probe, repeats=3),
        Probe("satisfiability", "reason", satisfiability_probe, repeats=3),
    ]


# ---------------------------------------------------------------------------
# scaling: the generated corpus, small (CI) and large (--scale) tiers
# ---------------------------------------------------------------------------

#: Budget caps for satisfiability probes on the scaling corpus.  The
#: saturation fast path decides the tractable profiles (tbox_heavy in
#: particular) without touching these caps — they only constrain work
#: on probes the dispatcher routes to the trail tableau, where they are
#: deterministic abort points.  Work budgets, never wall-clock: abort
#: points must not depend on the machine.
_SCALING_MAX_NODES = 10_000
_SCALING_MAX_BRANCHES = 5_000
_SCALING_MAX_TRAIL = 10_000

#: Corpus sizes per tier.  Reasoning probes run at REASON sizes: 10^2
#: for the small (CI) tier where the tableau must also keep up, 10^4 for
#: the large tier, which the saturation engine decides in-budget.
_SMALL_SIZES = (1_000, 3_000)
_SMALL_REASON_SIZE = 100
_LARGE_SIZES = (10_000, 100_000)
_LARGE_XL_SIZE = 1_000_000
_LARGE_REASON_SIZE = 10_000


def _corpus_probes(
    sizes,
    reason_size: int,
    settings: EvalSettings,
    xl_size: Optional[int] = None,
    classify_profiles=(),
) -> List[Probe]:
    from ..dl.budget import Budget
    from ..dl.parser import parse_kb4
    from ..dl.printer import render_kb4
    from ..four_dl.axioms4 import InclusionKind
    from ..four_dl.reasoner4 import Reasoner4
    from ..four_dl.transform import transform_kb
    from ..workloads.scaling import (
        ScalingConfig,
        ScalingProfile,
        generate_scaling_kb4,
        measured_clash_density,
    )

    probes: List[Probe] = []

    def add_phase_probes(profile: ScalingProfile, size: int) -> None:
        config = ScalingConfig(
            n_axioms=size, profile=profile, seed=settings.seed
        )
        prefix = f"{profile.value}-n{size}"

        def generate_probe(seed: int, config=config) -> ProbeResult:
            kb = generate_scaling_kb4(config)
            density = measured_clash_density(kb)
            return ProbeResult(
                counters={"axioms": len(kb)},
                extra={
                    "profile": config.profile.value,
                    "clash_density": round(density, 4),
                },
            )

        def parse_probe(seed: int, config=config) -> ProbeResult:
            parsed = parse_kb4(render_kb4(generate_scaling_kb4(config)))
            status = "ok" if len(parsed) == config.n_axioms else "fail"
            return ProbeResult(status=status, counters={"axioms": len(parsed)})

        def transform_probe(seed: int, config=config) -> ProbeResult:
            induced = transform_kb(generate_scaling_kb4(config))
            return ProbeResult(
                counters={
                    "axioms": config.n_axioms,
                    "induced_axioms": len(induced),
                },
                extra={
                    "size_ratio": round(len(induced) / config.n_axioms, 3)
                },
            )

        probes.append(Probe(f"{prefix}-generate", "generate", generate_probe))
        probes.append(Probe(f"{prefix}-parse", "parse", parse_probe))
        probes.append(Probe(f"{prefix}-transform", "transform", transform_probe))

    def add_reason_probe(profile: ScalingProfile) -> None:
        config = ScalingConfig(
            n_axioms=reason_size, profile=profile, seed=settings.seed
        )

        def reason_probe(seed: int, config=config) -> ProbeResult:
            # Node budget, not a deadline: the abort point (if any) is a
            # deterministic function of the KB, so the record stays
            # byte-stable across machines and runs.
            reasoner = Reasoner4(generate_scaling_kb4(config))
            verdict = reasoner.is_satisfiable_verdict(
                budget=Budget(
                    max_nodes=_SCALING_MAX_NODES,
                    max_branches=_SCALING_MAX_BRANCHES,
                    max_trail=_SCALING_MAX_TRAIL,
                )
            )
            if verdict.is_unknown():
                status = "unknown"
                answer = "unknown"
            else:
                status = "ok"
                answer = str(bool(verdict))
            return ProbeResult(
                status=status,
                counters=reasoner.stats.as_dict(),
                extra={
                    "profile": config.profile.value,
                    "n_axioms": config.n_axioms,
                    "satisfiable": answer,
                    "budget": {
                        "max_nodes": _SCALING_MAX_NODES,
                        "max_branches": _SCALING_MAX_BRANCHES,
                        "max_trail": _SCALING_MAX_TRAIL,
                    },
                },
            )

        probes.append(
            Probe(
                f"{profile.value}-n{reason_size}-reason", "reason", reason_probe
            )
        )

    def add_classify_probe(profile: ScalingProfile) -> None:
        config = ScalingConfig(
            n_axioms=reason_size, profile=profile, seed=settings.seed
        )

        def classify_probe(seed: int, config=config) -> ProbeResult:
            # Full internal classification under work budgets: the
            # saturation fast path must decide every subsumption probe
            # (a partial hierarchy or any UNKNOWN is a failure, not a
            # degradation to tolerate).
            reasoner = Reasoner4(generate_scaling_kb4(config))
            partial = reasoner.classify_bounded(
                kind=InclusionKind.INTERNAL,
                budget=Budget(
                    max_nodes=_SCALING_MAX_NODES,
                    max_branches=_SCALING_MAX_BRANCHES,
                    max_trail=_SCALING_MAX_TRAIL,
                ),
            )
            return ProbeResult(
                status="ok" if partial.complete else "unknown",
                counters=reasoner.stats.as_dict(),
                extra={
                    "profile": config.profile.value,
                    "n_axioms": config.n_axioms,
                    "complete": partial.complete,
                    "concepts": len(partial.hierarchy),
                },
            )

        probes.append(
            Probe(
                f"{profile.value}-n{reason_size}-classify",
                "classify",
                classify_probe,
            )
        )

    for profile in ScalingProfile:
        for size in sizes:
            add_phase_probes(profile, size)
        add_reason_probe(profile)
        if profile in classify_profiles:
            add_classify_probe(profile)
    if xl_size is not None:
        # One profile only at the 10^6 tier: the point is the curve's
        # end, not a full sweep; parse is included (slowest phase).
        add_phase_probes(ScalingProfile.ABOX_HEAVY, xl_size)
    return probes


def _scaling_small_probes(settings: EvalSettings) -> List[Probe]:
    return _corpus_probes(_SMALL_SIZES, _SMALL_REASON_SIZE, settings)


def _scaling_large_probes(settings: EvalSettings) -> List[Probe]:
    from ..workloads.scaling import ScalingProfile

    return _corpus_probes(
        _LARGE_SIZES,
        _LARGE_REASON_SIZE,
        settings,
        xl_size=_LARGE_XL_SIZE,
        classify_profiles=(ScalingProfile.TBOX_HEAVY,),
    )


ALL_SUITES: Dict[str, Suite] = {
    "paper": Suite(
        name="paper",
        description=(
            "every EXPERIMENTS.md artefact (tables, examples, claims) "
            "recomputed via repro.harness.experiments"
        ),
        build=_paper_probes,
    ),
    "classification": Suite(
        name="classification",
        description=(
            "parse/transform/classification/query probes on the shipped "
            "university ontology, plus a mutate-then-requery edit "
            "workload exercising fine-grained invalidation"
        ),
        build=_classification_probes,
    ),
    "scaling_small": Suite(
        name="scaling_small",
        description=(
            "generated scaling corpus at CI sizes (10^3) across all "
            "inconsistency profiles, plus decided satisfiability probes"
        ),
        build=_scaling_small_probes,
    ),
    "scaling_large": Suite(
        name="scaling_large",
        description=(
            "the 10^4-10^6-axiom corpus sweep (generate/parse/transform) "
            "plus work-budgeted satisfiability probes and a tbox_heavy "
            "classification probe at 10^4, decided by saturation"
        ),
        build=_scaling_large_probes,
        needs_scale=True,
    ),
}


def get_suite(name: str) -> Suite:
    """The named suite, raising ``KeyError`` with the catalogue on miss."""
    try:
        return ALL_SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; available: {', '.join(sorted(ALL_SUITES))}"
        ) from None
