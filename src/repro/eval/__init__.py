"""Scale-proof evaluation: declarative suites, run manifests, trajectory.

The artifact layer of the repo: ``repro eval run --suite <name>``
executes a declarative probe suite (:mod:`repro.eval.spec`) into an
isolated ``eval/results/<run-id>/`` directory with a config-snapshot
``manifest.json``, schema-versioned ``metrics.jsonl``, a rendered
``SUMMARY.md``, and a ``BENCH_<suite>.json`` perf-trajectory record
(:mod:`repro.eval.runner`).  The schemas live in
:mod:`repro.eval.manifest`; ``scripts/check_manifest_schema.py``
re-validates any run directory and ``scripts/bench_compare.py`` gates
p95 regressions against ``benchmarks/BASELINE.json``.

See ``docs/EVAL.md`` for the run-directory layout and the honest-
baseline-refresh workflow.
"""

from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    METRIC_SCHEMA_VERSION,
    METRIC_STATUSES,
    TIMING_FIELDS,
    build_manifest,
    git_revision,
    read_metrics_jsonl,
    strip_timing,
    validate_manifest,
    validate_metric_record,
)
from .runner import EvalRunError, ProbeMetric, RunResult, run_suite
from .spec import ALL_SUITES, EvalSettings, Probe, ProbeResult, Suite, get_suite

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "METRIC_SCHEMA_VERSION",
    "METRIC_STATUSES",
    "TIMING_FIELDS",
    "build_manifest",
    "git_revision",
    "read_metrics_jsonl",
    "strip_timing",
    "validate_manifest",
    "validate_metric_record",
    "EvalRunError",
    "ProbeMetric",
    "RunResult",
    "run_suite",
    "ALL_SUITES",
    "EvalSettings",
    "Probe",
    "ProbeResult",
    "Suite",
    "get_suite",
]
