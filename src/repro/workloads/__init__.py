"""Workload generation: random KBs and the paper's scenarios at scale."""

from .generators import (
    GeneratorConfig,
    Signature,
    generate_kb,
    generate_kb4,
    inject_contradictions,
    inject_contradictions4,
    random_concept,
)
from .scaling import (
    ScalingConfig,
    ScalingProfile,
    generate_scaling_kb4,
    measured_clash_density,
    scaling_sweep,
)
from .scenarios import (
    ALL_SCENARIOS,
    Scenario,
    adoption_families,
    hospital_records,
    medical_access_control,
    penguin_taxonomy,
)

__all__ = [
    "GeneratorConfig",
    "Signature",
    "generate_kb",
    "generate_kb4",
    "inject_contradictions",
    "inject_contradictions4",
    "random_concept",
    "ScalingConfig",
    "ScalingProfile",
    "generate_scaling_kb4",
    "measured_clash_density",
    "scaling_sweep",
    "ALL_SCENARIOS",
    "Scenario",
    "adoption_families",
    "hospital_records",
    "medical_access_control",
    "penguin_taxonomy",
]
