"""Workload generation: random KBs and the paper's scenarios at scale."""

from .generators import (
    GeneratorConfig,
    Signature,
    generate_kb,
    generate_kb4,
    inject_contradictions,
    inject_contradictions4,
    random_concept,
)
from .scenarios import (
    ALL_SCENARIOS,
    Scenario,
    adoption_families,
    hospital_records,
    medical_access_control,
    penguin_taxonomy,
)

__all__ = [
    "GeneratorConfig",
    "Signature",
    "generate_kb",
    "generate_kb4",
    "inject_contradictions",
    "inject_contradictions4",
    "random_concept",
    "ALL_SCENARIOS",
    "Scenario",
    "adoption_families",
    "hospital_records",
    "medical_access_control",
    "penguin_taxonomy",
]
