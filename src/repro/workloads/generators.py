"""Synthetic ontology generators for testing and benchmarking.

The paper evaluates on toy examples only; to benchmark at scale this
module generates random SHOIN(D) / SHOIN(D)4 knowledge bases with
controllable size, constructor mix, and injected inconsistency.  All
randomness flows through an explicit seed so every workload is exactly
reproducible.

The generators intentionally produce *reasoner-friendly* shapes (guarded
depth, unqualified counting on fresh roles) so benchmark time measures
scaling rather than pathological tableau blow-ups; the property tests use
:func:`random_concept` with wilder settings to stress correctness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dl import axioms as ax
from ..dl.concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Concept,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    QualifiedAtLeast,
    QualifiedAtMost,
    TOP,
)
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.roles import AtomicRole, ObjectRole
from ..four_dl.axioms4 import (
    ConceptInclusion4,
    InclusionKind,
    KnowledgeBase4,
)


@dataclass
class Signature:
    """A pool of names the generators draw from."""

    concepts: List[AtomicConcept]
    roles: List[AtomicRole]
    individuals: List[Individual]

    @staticmethod
    def of_size(
        n_concepts: int, n_roles: int, n_individuals: int
    ) -> "Signature":
        return Signature(
            concepts=[AtomicConcept(f"C{i}") for i in range(n_concepts)],
            roles=[AtomicRole(f"r{i}") for i in range(n_roles)],
            individuals=[Individual(f"ind{i}") for i in range(n_individuals)],
        )


@dataclass
class GeneratorConfig:
    """Knobs for the random KB generators."""

    n_concepts: int = 8
    n_roles: int = 3
    n_individuals: int = 6
    n_tbox: int = 10
    n_abox: int = 20
    max_depth: int = 2
    seed: int = 0
    allow_negation: bool = True
    allow_quantifiers: bool = True
    allow_counting: bool = False
    allow_nominals: bool = False
    allow_qualified: bool = False
    allow_negative_assertions: bool = False
    max_cardinality: int = 2
    #: Weights for material/internal/strong when generating KB4 TBoxes.
    inclusion_weights: Tuple[float, float, float] = (0.2, 0.6, 0.2)


def random_concept(
    rng: random.Random,
    signature: Signature,
    depth: int,
    allow_negation: bool = True,
    allow_quantifiers: bool = True,
    allow_counting: bool = False,
    allow_nominals: bool = False,
    allow_qualified: bool = False,
    max_cardinality: int = 2,
) -> Concept:
    """A random concept of bounded depth over the signature."""
    choices = ["atomic"]
    if depth > 0:
        choices += ["and", "or"]
        if allow_negation:
            choices.append("not")
        if allow_quantifiers and signature.roles:
            choices += ["exists", "forall"]
        if allow_counting and signature.roles:
            choices += ["atleast", "atmost"]
        if allow_qualified and signature.roles:
            choices += ["qatleast", "qatmost"]
        if allow_nominals and signature.individuals:
            choices.append("oneof")
    kind = rng.choice(choices)

    def recur() -> Concept:
        return random_concept(
            rng,
            signature,
            depth - 1,
            allow_negation=allow_negation,
            allow_quantifiers=allow_quantifiers,
            allow_counting=allow_counting,
            allow_nominals=allow_nominals,
            allow_qualified=allow_qualified,
            max_cardinality=max_cardinality,
        )

    if kind == "atomic":
        return rng.choice(signature.concepts)
    if kind == "not":
        return Not(recur())
    if kind == "and":
        return And.of(recur(), recur())
    if kind == "or":
        return Or.of(recur(), recur())
    role: ObjectRole = rng.choice(signature.roles)
    if rng.random() < 0.15:
        role = role.inverse()
    if kind == "exists":
        return Exists(role, recur())
    if kind == "forall":
        return Forall(role, recur())
    if kind == "atleast":
        return AtLeast(rng.randint(1, max_cardinality), role)
    if kind == "atmost":
        return AtMost(rng.randint(0, max_cardinality), role)
    if kind == "qatleast":
        return QualifiedAtLeast(rng.randint(1, max_cardinality), role, recur())
    if kind == "qatmost":
        return QualifiedAtMost(rng.randint(0, max_cardinality), role, recur())
    count = rng.randint(1, min(2, len(signature.individuals)))
    return OneOf(frozenset(rng.sample(signature.individuals, count)))


def _random_concept(rng: random.Random, config: GeneratorConfig, signature: Signature) -> Concept:
    return random_concept(
        rng,
        signature,
        depth=config.max_depth,
        allow_negation=config.allow_negation,
        allow_quantifiers=config.allow_quantifiers,
        allow_counting=config.allow_counting,
        allow_nominals=config.allow_nominals,
        allow_qualified=config.allow_qualified,
        max_cardinality=config.max_cardinality,
    )


def generate_kb(config: GeneratorConfig) -> KnowledgeBase:
    """A random classical KB per the configuration."""
    rng = random.Random(config.seed)
    signature = Signature.of_size(
        config.n_concepts, config.n_roles, config.n_individuals
    )
    kb = KnowledgeBase()
    for _ in range(config.n_tbox):
        # Atomic-left inclusions keep the TBox acyclic-ish and the tableau
        # fast while still exercising all constructors on the right.
        sub = rng.choice(signature.concepts)
        sup = _random_concept(rng, config, signature)
        kb.add(ax.ConceptInclusion(sub, sup))
    for _ in range(config.n_abox):
        if rng.random() < 0.5 and signature.roles:
            if config.allow_negative_assertions and rng.random() < 0.25:
                kb.add(
                    ax.NegativeRoleAssertion(
                        rng.choice(signature.roles),
                        rng.choice(signature.individuals),
                        rng.choice(signature.individuals),
                    )
                )
            else:
                kb.add(
                    ax.RoleAssertion(
                        rng.choice(signature.roles),
                        rng.choice(signature.individuals),
                        rng.choice(signature.individuals),
                    )
                )
        else:
            concept = rng.choice(signature.concepts)
            if config.allow_negation and rng.random() < 0.3:
                kb.add(
                    ax.ConceptAssertion(
                        rng.choice(signature.individuals), Not(concept)
                    )
                )
            else:
                kb.add(
                    ax.ConceptAssertion(rng.choice(signature.individuals), concept)
                )
    return kb


def generate_kb4(config: GeneratorConfig) -> KnowledgeBase4:
    """A random SHOIN(D)4 KB with mixed inclusion strengths."""
    rng = random.Random(config.seed)
    signature = Signature.of_size(
        config.n_concepts, config.n_roles, config.n_individuals
    )
    kinds = [
        InclusionKind.MATERIAL,
        InclusionKind.INTERNAL,
        InclusionKind.STRONG,
    ]
    kb4 = KnowledgeBase4()
    for _ in range(config.n_tbox):
        sub = rng.choice(signature.concepts)
        sup = _random_concept(rng, config, signature)
        kind = rng.choices(kinds, weights=config.inclusion_weights)[0]
        kb4.add(ConceptInclusion4(sub, sup, kind))
    for _ in range(config.n_abox):
        if rng.random() < 0.5 and signature.roles:
            if config.allow_negative_assertions and rng.random() < 0.25:
                kb4.add(
                    ax.NegativeRoleAssertion(
                        rng.choice(signature.roles),
                        rng.choice(signature.individuals),
                        rng.choice(signature.individuals),
                    )
                )
            else:
                kb4.add(
                    ax.RoleAssertion(
                        rng.choice(signature.roles),
                        rng.choice(signature.individuals),
                        rng.choice(signature.individuals),
                    )
                )
        else:
            concept = rng.choice(signature.concepts)
            individual = rng.choice(signature.individuals)
            if rng.random() < 0.3:
                kb4.add(ax.ConceptAssertion(individual, Not(concept)))
            else:
                kb4.add(ax.ConceptAssertion(individual, concept))
    return kb4


def inject_contradictions(
    kb: KnowledgeBase, count: int, seed: int = 0
) -> List[Tuple[Individual, AtomicConcept]]:
    """Add ``count`` direct contradictions ``{A(a), not A(a)}`` to the KB.

    Returns the (individual, concept) pairs made contradictory, so
    benchmarks can verify the contradiction is detected and localised.
    """
    rng = random.Random(seed)
    concepts = sorted(kb.concepts_in_signature(), key=lambda c: c.name)
    individuals = sorted(kb.individuals_in_signature())
    if not concepts or not individuals:
        raise ValueError("KB has no concepts or individuals to contradict")
    injected = []
    for _ in range(count):
        concept = rng.choice(concepts)
        individual = rng.choice(individuals)
        kb.add(ax.ConceptAssertion(individual, concept))
        kb.add(ax.ConceptAssertion(individual, Not(concept)))
        injected.append((individual, concept))
    return injected


def inject_contradictions4(
    kb4: KnowledgeBase4, count: int, seed: int = 0
) -> List[Tuple[Individual, AtomicConcept]]:
    """The KB4 version of :func:`inject_contradictions`."""
    rng = random.Random(seed)
    concepts = sorted(kb4.concepts_in_signature(), key=lambda c: c.name)
    individuals = sorted(kb4.individuals_in_signature())
    if not concepts or not individuals:
        raise ValueError("KB4 has no concepts or individuals to contradict")
    injected = []
    for _ in range(count):
        concept = rng.choice(concepts)
        individual = rng.choice(individuals)
        kb4.add(ax.ConceptAssertion(individual, concept))
        kb4.add(ax.ConceptAssertion(individual, Not(concept)))
        injected.append((individual, concept))
    return injected
