"""Parameterised scaling corpus: large KB4 workloads by inconsistency profile.

The paper's claims are shape claims (the transformation is polynomial,
SHOIN(D)4 costs the same as SHOIN(D), contradictions stay local) and
EXPERIMENTS.md verifies them at toy sizes only.  This module generates
the 10^4-10^6-axiom end of the curve: knowledge bases whose *size* and
*inconsistency profile* are both dialled in explicitly, so the eval
suites (:mod:`repro.eval`) can sweep them and the regression gate can
hold each phase to a recorded p95.

Every generator is a pure function of its :class:`ScalingConfig` —
``generate_scaling_kb4`` called twice with the same config produces a
byte-identical knowledge base (``render_kb4`` output compares equal),
which is what lets run manifests pin a corpus by ``(profile, n_axioms,
seed)`` instead of shipping gigabytes of ontology text.

Profiles
--------

* ``exception_chain`` — penguin-style defeasible chains: specialisation
  towers ``C_{i+1} < C_i`` with material defaults ``C_i |-> D_i`` and
  exceptional subclasses overriding them (``C_{i+1} < not D_i``).
  Classically unsatisfiable almost everywhere, four-valuedly benign;
* ``clash_density`` — a flat corpus where a controllable fraction of
  axioms form direct ``{A(a), not A(a)}`` contradiction pairs;
* ``abox_heavy`` — ~90% assertions over a thin terminology (data-load
  shape: many individuals, few concepts);
* ``tbox_heavy`` — ~90% terminology over a small ABox (schema-load
  shape: classification-dominated work).

All profiles honour ``clash_density`` except ``exception_chain``, whose
inconsistency comes from the defeated defaults rather than raw clashes.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..dl import axioms as ax
from ..dl.concepts import AtomicConcept, Exists, Not
from ..dl.individuals import Individual
from ..dl.roles import AtomicRole
from ..four_dl.axioms4 import (
    ConceptInclusion4,
    InclusionKind,
    KnowledgeBase4,
)

__all__ = [
    "ScalingProfile",
    "ScalingConfig",
    "generate_scaling_kb4",
    "measured_clash_density",
    "scaling_sweep",
]


class ScalingProfile(enum.Enum):
    """The inconsistency/workload shapes the scaling corpus covers."""

    EXCEPTION_CHAIN = "exception_chain"
    CLASH_DENSITY = "clash_density"
    ABOX_HEAVY = "abox_heavy"
    TBOX_HEAVY = "tbox_heavy"


@dataclass(frozen=True)
class ScalingConfig:
    """One point of the scaling corpus.

    ``n_axioms`` is hit exactly (the generators pad with plain
    assertions); ``clash_density`` is the target fraction of axioms that
    participate in a direct ``{A(a), not A(a)}`` contradiction pair, and
    is matched within one pair.
    """

    n_axioms: int = 10_000
    profile: ScalingProfile = ScalingProfile.ABOX_HEAVY
    clash_density: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_axioms < 8:
            raise ValueError("scaling corpus starts at 8 axioms")
        if not 0.0 <= self.clash_density <= 0.5:
            raise ValueError("clash_density must be within [0, 0.5]")

    @property
    def name(self) -> str:
        """A stable slug naming this corpus point (used in run records)."""
        return f"{self.profile.value}-n{self.n_axioms}-s{self.seed}"


def _rng(config: ScalingConfig) -> random.Random:
    # String seeding hashes via SHA-512, deterministic across processes
    # and platforms (unlike hash()-seeded ints under PYTHONHASHSEED).
    return random.Random(
        f"scaling:{config.profile.value}:{config.n_axioms}:{config.seed}"
    )


def _pools(
    config: ScalingConfig,
) -> Tuple[List[AtomicConcept], List[AtomicRole], List[Individual]]:
    """Signature pools sized to the corpus (sub-linear in ``n_axioms``)."""
    n = config.n_axioms
    n_concepts = max(8, int(math.isqrt(n)))
    n_roles = max(3, int(math.isqrt(n)) // 4)
    n_individuals = max(8, n // 4)
    return (
        [AtomicConcept(f"C{i}") for i in range(n_concepts)],
        [AtomicRole(f"r{i}") for i in range(n_roles)],
        [Individual(f"i{i}") for i in range(n_individuals)],
    )


def _clash_pairs(
    rng: random.Random,
    budget: int,
    concepts: List[AtomicConcept],
    individuals: List[Individual],
) -> Iterator[object]:
    """``budget // 2`` direct contradiction pairs (2 axioms each)."""
    for _ in range(budget // 2):
        concept = rng.choice(concepts)
        individual = rng.choice(individuals)
        yield ax.ConceptAssertion(individual, concept)
        yield ax.ConceptAssertion(individual, Not(concept))


def _filler_assertions(
    rng: random.Random,
    budget: int,
    concepts: List[AtomicConcept],
    roles: List[AtomicRole],
    individuals: List[Individual],
    role_fraction: float = 0.3,
) -> Iterator[object]:
    """Plain (non-contradictory) ABox axioms to pad a corpus to size."""
    for _ in range(budget):
        if rng.random() < role_fraction:
            yield ax.RoleAssertion(
                rng.choice(roles),
                rng.choice(individuals),
                rng.choice(individuals),
            )
        else:
            yield ax.ConceptAssertion(
                rng.choice(individuals), rng.choice(concepts)
            )


def _thin_tbox(
    rng: random.Random,
    budget: int,
    concepts: List[AtomicConcept],
    roles: List[AtomicRole],
) -> Iterator[object]:
    """Atomic-left inclusions of mixed strengths (tableau-friendly)."""
    kinds = [InclusionKind.MATERIAL, InclusionKind.INTERNAL, InclusionKind.STRONG]
    weights = (0.2, 0.6, 0.2)
    for _ in range(budget):
        sub = rng.choice(concepts)
        if rng.random() < 0.15 and roles:
            sup: object = Exists(rng.choice(roles), rng.choice(concepts))
        else:
            sup = rng.choice(concepts)
        kind = rng.choices(kinds, weights=weights)[0]
        yield ConceptInclusion4(sub, sup, kind)


def _exception_chain_axioms(config: ScalingConfig) -> Iterator[object]:
    """Towers of defeasible defaults with exceptional subclasses.

    Each 5-axiom block ``b`` is a penguin in miniature::

        B_b   < A_b          (specialisation)
        A_b  |-> D_b         (material default: As are normally D)
        B_b   < not D_b      (the exception: Bs override the default)
        x_b   : B_b          (an exceptional witness)
        y_b   : A_b          (a normal witness keeping the default live)

    Collapsed classically the corpus explodes at every block; in
    SHOIN(D)4 every block stays local, which is exactly the shape the
    paraconsistency experiment measures at toy size.
    """
    rng = _rng(config)
    n = config.n_axioms
    blocks = n // 5
    concepts, roles, individuals = _pools(config)
    for b in range(blocks):
        base = AtomicConcept(f"A{b}")
        special = AtomicConcept(f"B{b}")
        default = AtomicConcept(f"D{b}")
        yield ConceptInclusion4(special, base, InclusionKind.INTERNAL)
        yield ConceptInclusion4(base, default, InclusionKind.MATERIAL)
        yield ConceptInclusion4(special, Not(default), InclusionKind.INTERNAL)
        yield ax.ConceptAssertion(Individual(f"x{b}"), special)
        yield ax.ConceptAssertion(Individual(f"y{b}"), base)
    yield from _filler_assertions(
        rng, n - blocks * 5, concepts, roles, individuals
    )


def _clash_density_axioms(config: ScalingConfig) -> Iterator[object]:
    rng = _rng(config)
    n = config.n_axioms
    concepts, roles, individuals = _pools(config)
    clash_budget = int(round(n * config.clash_density))
    tbox_budget = n // 10
    yield from _thin_tbox(rng, tbox_budget, concepts, roles)
    emitted = 2 * (clash_budget // 2)
    yield from _clash_pairs(rng, clash_budget, concepts, individuals)
    yield from _filler_assertions(
        rng, n - tbox_budget - emitted, concepts, roles, individuals
    )


def _abox_heavy_axioms(config: ScalingConfig) -> Iterator[object]:
    rng = _rng(config)
    n = config.n_axioms
    concepts, roles, individuals = _pools(config)
    tbox_budget = n // 10
    clash_budget = int(round(n * config.clash_density))
    yield from _thin_tbox(rng, tbox_budget, concepts, roles)
    emitted = 2 * (clash_budget // 2)
    yield from _clash_pairs(rng, clash_budget, concepts, individuals)
    yield from _filler_assertions(
        rng,
        n - tbox_budget - emitted,
        concepts,
        roles,
        individuals,
        role_fraction=0.4,
    )


def _tbox_heavy_axioms(config: ScalingConfig) -> Iterator[object]:
    rng = _rng(config)
    n = config.n_axioms
    concepts, roles, individuals = _pools(config)
    abox_budget = n // 10
    tbox_budget = n - abox_budget
    clash_budget = min(int(round(n * config.clash_density)), abox_budget)
    yield from _thin_tbox(rng, tbox_budget, concepts, roles)
    emitted = 2 * (clash_budget // 2)
    yield from _clash_pairs(rng, clash_budget, concepts, individuals)
    yield from _filler_assertions(
        rng, abox_budget - emitted, concepts, roles, individuals
    )


_PROFILE_BUILDERS = {
    ScalingProfile.EXCEPTION_CHAIN: _exception_chain_axioms,
    ScalingProfile.CLASH_DENSITY: _clash_density_axioms,
    ScalingProfile.ABOX_HEAVY: _abox_heavy_axioms,
    ScalingProfile.TBOX_HEAVY: _tbox_heavy_axioms,
}


def generate_scaling_kb4(config: ScalingConfig) -> KnowledgeBase4:
    """The KB4 at one corpus point; deterministic in ``config``.

    ``len(result) == config.n_axioms`` exactly, and rendering the result
    with :func:`repro.dl.printer.render_kb4` is byte-stable across calls
    and processes.
    """
    kb4 = KnowledgeBase4()
    count = 0
    for axiom in _PROFILE_BUILDERS[config.profile](config):
        kb4.add(axiom)
        count += 1
    if count != config.n_axioms:
        raise AssertionError(
            f"generator bug: {config.name} produced {count} axioms, "
            f"wanted {config.n_axioms}"
        )
    return kb4


def measured_clash_density(kb4: KnowledgeBase4) -> float:
    """The fraction of axioms in direct ``{A(a), not A(a)}`` pairs.

    Counts syntactic complementary concept-assertion pairs only — the
    quantity the ``clash_density`` knob controls — not entailed
    contradictions (those are the reasoner's job to find).
    """
    positive: Dict[Tuple[str, str], int] = {}
    negative: Dict[Tuple[str, str], int] = {}
    for axiom in kb4.abox():
        if not isinstance(axiom, ax.ConceptAssertion):
            continue
        concept = axiom.concept
        if isinstance(concept, AtomicConcept):
            key = (axiom.individual.name, concept.name)
            positive[key] = positive.get(key, 0) + 1
        elif isinstance(concept, Not) and isinstance(
            concept.operand, AtomicConcept
        ):
            key = (axiom.individual.name, concept.operand.name)
            negative[key] = negative.get(key, 0) + 1
    clashing = 0
    for key, n_pos in positive.items():
        n_neg = negative.get(key, 0)
        if n_neg:
            clashing += min(n_pos, n_neg) * 2
    return clashing / len(kb4) if len(kb4) else 0.0


def scaling_sweep(
    sizes: Tuple[int, ...],
    profiles: Tuple[ScalingProfile, ...] = tuple(ScalingProfile),
    clash_density: float = 0.02,
    seed: int = 0,
) -> List[ScalingConfig]:
    """The cross product of sizes and profiles as corpus points."""
    return [
        ScalingConfig(
            n_axioms=size,
            profile=profile,
            clash_density=clash_density,
            seed=seed,
        )
        for profile in profiles
        for size in sizes
    ]
