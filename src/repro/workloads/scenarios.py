"""Scaled versions of the paper's motivating scenarios (Examples 1-4).

Each builder returns a SHOIN(D)4 KB plus the evidence queries the paper
asks of it, parameterised by size so the same shapes drive benchmarks:

* :func:`medical_access_control` — the access-control conflict of the
  introduction and Example 2 (surgical vs urgency team membership);
* :func:`hospital_records` — Example 1's ``hasPatient``-propagation with a
  contradictory doctor, with many wards;
* :func:`penguin_taxonomy` — Example 3's exception pattern over a chain
  of bird species, material inclusion at the top;
* :func:`adoption_families` — Example 4's number-restriction pattern over
  many families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..dl import axioms as ax
from ..dl.concepts import And, AtLeast, AtomicConcept, Concept, Exists, Not
from ..dl.individuals import Individual
from ..dl.roles import AtomicRole
from ..four_dl.axioms4 import KnowledgeBase4, internal, material, strong

Query = Tuple[Individual, Concept]


@dataclass
class Scenario:
    """A workload: a four-valued KB and the queries asked of it."""

    name: str
    kb4: KnowledgeBase4
    queries: List[Query]
    #: (individual, concept) pairs expected to be contradictory (BOTH).
    expected_conflicts: List[Query]


def medical_access_control(n_staff: int = 4, n_conflicted: int = 1) -> Scenario:
    """Example 2 scaled: ``n_staff`` members, ``n_conflicted`` in both teams.

    Surgical team members may not read patient records, urgency team
    members may; conflicted members belong to both.  Unconflicted members
    alternate between the two teams.
    """
    surgical = AtomicConcept("SurgicalTeam")
    urgency = AtomicConcept("UrgencyTeam")
    readers = AtomicConcept("ReadPatientRecordTeam")
    patient = AtomicConcept("Patient")
    kb4 = KnowledgeBase4()
    kb4.add(internal(surgical, Not(readers)))
    kb4.add(internal(urgency, readers))
    queries: List[Query] = []
    conflicts: List[Query] = []
    for index in range(n_staff):
        member = Individual(f"staff{index}")
        if index < n_conflicted:
            kb4.add(ax.ConceptAssertion(member, surgical))
            kb4.add(ax.ConceptAssertion(member, urgency))
            conflicts.append((member, readers))
        elif index % 2 == 0:
            kb4.add(ax.ConceptAssertion(member, surgical))
        else:
            kb4.add(ax.ConceptAssertion(member, urgency))
        queries.append((member, readers))
        queries.append((member, patient))
    return Scenario("medical_access_control", kb4, queries, conflicts)


def hospital_records(n_wards: int = 3) -> Scenario:
    """Example 1 scaled: each ward has a doctor with a patient, one
    contradictory doctor overall."""
    doctor = AtomicConcept("Doctor")
    patient = AtomicConcept("Patient")
    has_patient = AtomicRole("hasPatient")
    kb4 = KnowledgeBase4()
    kb4.add(internal(Exists(has_patient, patient), doctor))
    john = Individual("john")
    kb4.add(ax.ConceptAssertion(john, doctor))
    kb4.add(ax.ConceptAssertion(john, Not(doctor)))
    queries: List[Query] = [(john, doctor)]
    for index in range(n_wards):
        carer = Individual(f"carer{index}")
        sick = Individual(f"sick{index}")
        kb4.add(ax.ConceptAssertion(sick, patient))
        kb4.add(ax.RoleAssertion(has_patient, carer, sick))
        queries.append((carer, doctor))
        queries.append((sick, doctor))
    return Scenario("hospital_records", kb4, queries, [(john, doctor)])


def penguin_taxonomy(n_species: int = 3, n_birds_per_species: int = 1) -> Scenario:
    """Example 3 scaled: a chain of flightless species under ``Bird``.

    The material inclusion ``Bird and (hasWing some Wing) |-> Fly`` sits at
    the top; each species ``S_i`` is internally included in the previous
    one, has wings, and cannot fly.  Every bird individual ends up a
    flightless exception without trivialising the KB.
    """
    bird = AtomicConcept("Bird")
    fly = AtomicConcept("Fly")
    wing = AtomicConcept("Wing")
    has_wing = AtomicRole("hasWing")
    kb4 = KnowledgeBase4()
    kb4.add(material(And.of(bird, Exists(has_wing, wing)), fly))
    previous = bird
    species: List[AtomicConcept] = []
    for index in range(n_species):
        current = AtomicConcept(f"Species{index}")
        kb4.add(internal(current, previous))
        kb4.add(internal(current, Exists(has_wing, wing)))
        kb4.add(internal(current, Not(fly)))
        species.append(current)
        previous = current
    queries: List[Query] = []
    conflicts: List[Query] = []
    for s_index, current in enumerate(species):
        for b_index in range(n_birds_per_species):
            animal = Individual(f"bird_{s_index}_{b_index}")
            feather = Individual(f"wing_{s_index}_{b_index}")
            kb4.add(ax.ConceptAssertion(animal, current))
            kb4.add(ax.ConceptAssertion(animal, bird))
            kb4.add(ax.ConceptAssertion(feather, wing))
            kb4.add(ax.RoleAssertion(has_wing, animal, feather))
            queries.append((animal, fly))
            queries.append((animal, bird))
    return Scenario("penguin_taxonomy", kb4, queries, conflicts)


def adoption_families(n_families: int = 2) -> Scenario:
    """Example 4 scaled: single adopters with children.

    ``hasChild min 1`` internally implies ``Parent``; parents are
    *materially* (exception-tolerantly) married; each adopter is asserted
    unmarried.  Because the marriage inclusion is material, the adopters
    are exceptions, not contradictions: no query is expected BOTH.
    """
    parent = AtomicConcept("Parent")
    married = AtomicConcept("Married")
    has_child = AtomicRole("hasChild")
    kb4 = KnowledgeBase4()
    kb4.add(internal(AtLeast(1, has_child), parent))
    kb4.add(material(parent, married))
    queries: List[Query] = []
    conflicts: List[Query] = []
    for index in range(n_families):
        adopter = Individual(f"adopter{index}")
        child = Individual(f"child{index}")
        kb4.add(ax.RoleAssertion(has_child, adopter, child))
        kb4.add(ax.ConceptAssertion(adopter, Not(married)))
        queries.append((adopter, parent))
        queries.append((adopter, married))
    return Scenario("adoption_families", kb4, queries, conflicts)


ALL_SCENARIOS = (
    medical_access_control,
    hospital_records,
    penguin_taxonomy,
    adoption_families,
)
