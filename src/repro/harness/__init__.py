"""Experiment harness: timing, table rendering, and the paper battery."""

from .tables import format_table, print_table
from .timing import Measurement, Timer, measure, time_call
from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    TABLE4_EXPECTED,
    example3_kb4,
    example4_kb4,
    run_all,
)

__all__ = [
    "format_table",
    "print_table",
    "Measurement",
    "Timer",
    "measure",
    "time_call",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "TABLE4_EXPECTED",
    "example3_kb4",
    "example4_kb4",
    "run_all",
]
