"""Experiment harness: timing, tables, the paper battery, chaos testing."""

from .tables import format_table, print_table
from .timing import Measurement, Timer, measure, time_call
from .chaos import (
    ChaosCaseResult,
    ChaosError,
    ChaosReport,
    ScriptedCancelToken,
    SteppedClock,
    run_chaos_case,
    run_chaos_suite,
)
from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    TABLE4_EXPECTED,
    example3_kb4,
    example4_kb4,
    run_all,
)

__all__ = [
    "ChaosCaseResult",
    "ChaosError",
    "ChaosReport",
    "ScriptedCancelToken",
    "SteppedClock",
    "run_chaos_case",
    "run_chaos_suite",
    "format_table",
    "print_table",
    "Measurement",
    "Timer",
    "measure",
    "time_call",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "TABLE4_EXPECTED",
    "example3_kb4",
    "example4_kb4",
    "run_all",
]
