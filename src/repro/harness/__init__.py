"""Experiment harness: timing, table rendering, and the paper battery."""

from .tables import format_table, print_table
from .timing import Timer, time_call
from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    TABLE4_EXPECTED,
    example3_kb4,
    example4_kb4,
    run_all,
)

__all__ = [
    "format_table",
    "print_table",
    "Timer",
    "time_call",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "TABLE4_EXPECTED",
    "example3_kb4",
    "example4_kb4",
    "run_all",
]
