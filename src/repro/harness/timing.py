"""Small timing utilities shared by benchmarks and experiment scripts."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

from ..dl.stats import ReasonerStats
from ..obs.metrics import percentile

_T = TypeVar("_T")


@dataclass
class Timer:
    """A context manager accumulating wall-clock durations.

    Re-entrant: entries nest on a stack, so a timed region may itself
    time sub-regions with the same timer (each exit appends the sample
    for its own entry).  Exiting more often than entering raises
    ``RuntimeError`` instead of silently recording garbage.

    >>> timer = Timer()
    >>> with timer:
    ...     with timer:
    ...         pass
    >>> len(timer.samples)
    2
    >>> timer.total >= 0
    True
    """

    samples: List[float] = field(default_factory=list)
    _starts: List[float] = field(default_factory=list)

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._starts:
            raise RuntimeError(
                "Timer.__exit__ without a matching __enter__ "
                "(unbalanced context-manager use)"
            )
        self.samples.append(time.perf_counter() - self._starts.pop())

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return statistics.mean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0

    @property
    def p95(self) -> float:
        """The 95th-percentile sample (0.0 when no samples were taken)."""
        return percentile(self.samples, 0.95)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0.0 with fewer than two samples)."""
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)


def time_call(function: Callable[[], object], repeats: int = 3) -> float:
    """The median wall-clock seconds of calling ``function``."""
    timer = Timer()
    for _ in range(repeats):
        with timer:
            function()
    return timer.median


@dataclass
class Measurement:
    """One timed call together with the reasoner work it performed."""

    result: object
    seconds: float
    stats: Optional[ReasonerStats] = None

    def render(self) -> str:
        line = f"{self.seconds:.3f}s"
        if self.stats is not None:
            line += f" | {self.stats.render()}"
        return line


def measure(
    function: Callable[[], _T], stats: Optional[ReasonerStats] = None
) -> Measurement:
    """Call ``function`` once, capturing wall time and the stats delta.

    When ``stats`` is a reasoner's :class:`ReasonerStats`, the returned
    measurement carries only the work done *during* the call, so hot
    (cached) and cold runs can be compared counter-for-counter.
    """
    before = stats.snapshot() if stats is not None else None
    started = time.perf_counter()
    result = function()
    seconds = time.perf_counter() - started
    delta = stats - before if stats is not None and before is not None else None
    return Measurement(result=result, seconds=seconds, stats=delta)
