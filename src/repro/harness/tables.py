"""Plain-text table rendering for the experiment harness.

The benchmark and experiment scripts print paper-style tables; this keeps
the formatting in one place (monospace boxes, right-padded cells) with no
third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table."""
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
            + " |"
        )

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(separator)
    parts.append(line(list(headers)))
    parts.append(separator)
    for row in string_rows:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> None:
    """Print an aligned ASCII table."""
    print(format_table(headers, rows, title=title))
