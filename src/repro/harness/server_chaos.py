"""Server-level fault injection: chaos testing for :mod:`repro.serve`.

The library-level harness (:mod:`repro.harness.chaos`) proves the
degradation layer can absorb mid-search faults; this module proves the
*service* built on top of it absorbs operational faults — the kinds a
deployment actually sees:

* ``worker_kill`` — SIGKILL a worker with a request in flight; the
  request must be answered with structured UNKNOWN
  (``reason=worker_crash``), the worker must restart, and readiness
  must recover;
* ``stall`` — wedge a worker past a request's deadline; the stall
  watchdog must cancel, then kill, and the request must degrade rather
  than hang;
* ``malformed`` — a battery of broken payloads (invalid JSON, wrong
  types, unknown kinds, missing required fields, bad schema versions)
  must each earn a 400-style usage error and leave the server ready;
* ``disconnect`` — a client that sends a probe and slams the
  connection must not wedge a handler thread or leak an admission slot;
* ``queue_saturation`` — a burst beyond the admission bound must be
  shed with 429 + ``Retry-After``, never queued unboundedly.

After every fault the verifier replays a deterministic probe battery
and demands the response bodies be **byte-identical** to a cold
server's (one that never saw the fault).  Because responses are
canonical JSON with no volatile fields, byte equality is exactly the
"cache never poisoned, recovery is complete" invariant: a worker that
restarted answers from a cold cache, and a warm survivor may only ever
*agree* faster.

Every scenario runs with per-request tracing enabled (the default), so
the byte-identity check doubles as proof that trace collection never
leaks into response bodies; a final trace-plane check demands the
replayed battery left served traces and journal lines behind.

Typical use::

    from repro.harness.server_chaos import run_server_chaos_suite
    report = run_server_chaos_suite("ontologies/university.kb4")
    assert report.ok, report.render()
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dl.parser import parse_kb4
from ..serve.protocol import ProbeRequest, ProbeResponse
from ..serve.server import ReproServer

__all__ = [
    "SERVER_FAULT_KINDS",
    "ServerChaosCaseResult",
    "ServerChaosReport",
    "battery_for",
    "run_server_chaos_case",
    "run_server_chaos_suite",
]

#: The injectable service-level fault kinds.
SERVER_FAULT_KINDS: Tuple[str, ...] = (
    "worker_kill",
    "stall",
    "malformed",
    "disconnect",
    "queue_saturation",
)

#: Payloads for the ``malformed`` fault: every way a request can be
#: broken without being a transport error.
MALFORMED_BODIES: Tuple[str, ...] = (
    "this is not json",
    "[1, 2, 3]",
    '{"kind": "satisfiable"}',
    '{"kind": "made_up_kind", "kb": "university"}',
    '{"kind": "instance", "kb": "university"}',
    '{"kind": "satisfiable", "kb": "university", "deadline_ms": "soon"}',
    '{"kind": "satisfiable", "kb": "university", "schema": 999}',
    '{"kind": "subsumption", "kb": "university", "sub": "A", "sup": "B",'
    ' "inclusion": "sideways"}',
)


def battery_for(
    kb_name: str,
    kb_path: str,
    deadline_ms: float = 20_000.0,
    max_atoms: int = 3,
    max_individuals: int = 2,
) -> List[ProbeRequest]:
    """A deterministic probe battery over one served KB's signature.

    Mirrors :func:`repro.harness.chaos.probe_plan` but speaks the wire
    protocol: satisfiability first, then subsumption pairs over the
    first atoms, then instance and Belnap-value checks over the first
    individuals.  Deterministic ordering makes the replies a canonical
    transcript a chaos case can byte-compare.
    """
    with open(kb_path) as handle:
        kb4 = parse_kb4(handle.read())
    atoms = sorted(
        (atom.name for atom in kb4.concepts_in_signature())
    )[:max_atoms]
    individuals = sorted(
        (individual.name for individual in kb4.individuals_in_signature())
    )[:max_individuals]
    battery = [
        ProbeRequest(kind="satisfiable", kb=kb_name, deadline_ms=deadline_ms)
    ]
    for sub in atoms:
        for sup in atoms:
            if sub != sup:
                battery.append(
                    ProbeRequest(
                        kind="subsumption",
                        kb=kb_name,
                        sub=sub,
                        sup=sup,
                        deadline_ms=deadline_ms,
                    )
                )
    for individual in individuals:
        for atom in atoms:
            battery.append(
                ProbeRequest(
                    kind="instance",
                    kb=kb_name,
                    individual=individual,
                    concept=atom,
                    deadline_ms=deadline_ms,
                )
            )
            battery.append(
                ProbeRequest(
                    kind="assertion_value",
                    kb=kb_name,
                    individual=individual,
                    concept=atom,
                    deadline_ms=deadline_ms,
                )
            )
    return battery


@dataclass
class ServerChaosCaseResult:
    """The outcome of one service-level fault scenario."""

    fault: str
    #: Scenario observations worth surfacing (restart counts, statuses).
    notes: List[str] = field(default_factory=list)
    #: Invariant violations; empty means the case passed.
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every invariant held for this scenario."""
        return not self.mismatches


@dataclass
class ServerChaosReport:
    """Aggregate over a server chaos suite run."""

    cases: List[ServerChaosCaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every scenario passed."""
        return all(case.ok for case in self.cases)

    def failures(self) -> List[ServerChaosCaseResult]:
        """The scenarios with at least one violation."""
        return [case for case in self.cases if not case.ok]

    def render(self) -> str:
        """A short human summary, listing violations if any."""
        lines = [
            f"server chaos: {len(self.cases)} scenarios, "
            f"{len(self.failures())} failing"
        ]
        for case in self.cases:
            status = "ok" if case.ok else "FAIL"
            lines.append(f"  [{status}] {case.fault}")
            lines.extend(f"    note: {note}" for note in case.notes)
            lines.extend(f"    violation: {bad}" for bad in case.mismatches)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Raw-socket helpers (the harness must misbehave below urllib's level)
# ---------------------------------------------------------------------------

def _post(
    address: Tuple[str, int], body: str, timeout: float = 30.0
) -> Tuple[int, str, Dict[str, str]]:
    """One raw POST /probe: ``(status, body, headers)`` without retries."""
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}/probe",
        data=body.encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as raw:
            return raw.status, raw.read().decode("utf-8"), dict(raw.headers)
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.read().decode("utf-8", errors="replace"),
            dict(error.headers),
        )


def _get(address: Tuple[str, int], path: str, timeout: float = 5.0) -> int:
    host, port = address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=timeout
        ) as raw:
            return raw.status
    except urllib.error.HTTPError as error:
        return error.code


def _wait_ready(
    address: Tuple[str, int], timeout: float = 10.0
) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if _get(address, "/readyz") == 200:
                return True
        except (urllib.error.URLError, ConnectionError, socket.timeout):
            pass
        time.sleep(0.02)
    return False


def _transcript(
    address: Tuple[str, int], battery: Sequence[ProbeRequest]
) -> List[str]:
    """The canonical response bodies of one battery replay."""
    bodies = []
    for request in battery:
        _, body, _ = _post(address, json.dumps(request.to_wire()))
        # Re-canonicalise through the protocol layer so header-order or
        # whitespace quirks can never mask (or fake) a real mismatch.
        bodies.append(ProbeResponse.from_json(body).to_json())
    return bodies


def _server(kb_name: str, kb_path: str, **overrides) -> ReproServer:
    options = dict(
        workers=1,
        chaos=True,
        restart_backoff=0.05,
        backoff_cap=0.5,
        poll_interval=0.01,
        stall_grace=0.25,
        default_deadline_ms=30_000.0,
    )
    options.update(overrides)
    server = ReproServer({kb_name: kb_path}, port=0, **options)
    server.start()
    return server


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------

def _inject_worker_kill(
    server: ReproServer, result: ServerChaosCaseResult
) -> None:
    """Kill the worker with a request in flight (SIGKILL via debug_crash)."""
    kb = next(iter(server.kb_paths))
    status, body, _ = _post(
        server.address,
        json.dumps(
            ProbeRequest(
                kind="debug_crash", kb=kb, deadline_ms=5_000.0
            ).to_wire()
        ),
    )
    response = ProbeResponse.from_json(body)
    if response.status != "unknown" or response.reason != "worker_crash":
        result.mismatches.append(
            f"in-flight request over a killed worker answered "
            f"{status}/{body!r}, expected UNKNOWN(worker_crash)"
        )
    if not _wait_ready(server.address):
        result.mismatches.append("server never became ready after the kill")
    restarts = server.pool.restarts_total()
    if restarts < 1:
        result.mismatches.append(
            f"expected at least one worker restart, counted {restarts}"
        )
    result.notes.append(f"worker restarts: {restarts}")


def _inject_stall(
    server: ReproServer, result: ServerChaosCaseResult
) -> None:
    """Wedge the worker far past a short deadline; it must degrade."""
    kb = next(iter(server.kb_paths))
    started = time.monotonic()
    status, body, _ = _post(
        server.address,
        json.dumps(
            ProbeRequest(
                kind="debug_stall",
                kb=kb,
                deadline_ms=200.0,
                stall_s=30.0,
            ).to_wire()
        ),
        timeout=30.0,
    )
    elapsed = time.monotonic() - started
    response = ProbeResponse.from_json(body)
    if response.status != "unknown":
        result.mismatches.append(
            f"stalled request answered {status}/{body!r}, expected UNKNOWN"
        )
    if elapsed > 10.0:
        result.mismatches.append(
            f"stalled request took {elapsed:.1f}s to degrade — the "
            "watchdog did not escalate"
        )
    result.notes.append(
        f"stall degraded to {response.reason!r} in {elapsed:.2f}s"
    )
    if not _wait_ready(server.address):
        result.mismatches.append("server never became ready after the stall")


def _inject_malformed(
    server: ReproServer, result: ServerChaosCaseResult
) -> None:
    """Every broken payload earns a usage error; none disturbs serving."""
    for payload in MALFORMED_BODIES:
        status, body, _ = _post(server.address, payload)
        try:
            response = ProbeResponse.from_json(body)
        except Exception:  # noqa: BLE001 - the assertion below reports it
            result.mismatches.append(
                f"malformed payload {payload!r} earned a non-protocol "
                f"body {body!r}"
            )
            continue
        if status not in (400, 404) or response.status != "error":
            result.mismatches.append(
                f"malformed payload {payload!r} answered "
                f"{status}/{response.status}, expected 400/error"
            )
    result.notes.append(f"{len(MALFORMED_BODIES)} malformed payloads shed")


def _inject_disconnect(
    server: ReproServer, result: ServerChaosCaseResult
) -> None:
    """Send probes and hang up before reading; nothing may leak or wedge."""
    kb = next(iter(server.kb_paths))
    host, port = server.address
    payload = json.dumps(
        ProbeRequest(
            kind="satisfiable", kb=kb, deadline_ms=5_000.0
        ).to_wire()
    ).encode("utf-8")
    for _ in range(4):
        with socket.create_connection((host, port), timeout=5.0) as raw:
            raw.sendall(
                b"POST /probe HTTP/1.1\r\n"
                b"Host: chaos\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(payload)}\r\n\r\n".encode("ascii")
                + payload
            )
            # Slam the connection without reading the response.
    # One slow path: disconnect mid-body so the read itself fails.
    with socket.create_connection((host, port), timeout=5.0) as raw:
        raw.sendall(
            b"POST /probe HTTP/1.1\r\nHost: chaos\r\n"
            b"Content-Length: 500\r\n\r\n{\"kind\":"
        )
    time.sleep(0.2)
    free = server.queue_free()
    if free != server.max_queue:
        result.mismatches.append(
            f"admission slots leaked after disconnects: "
            f"{free}/{server.max_queue} free"
        )
    result.notes.append("5 abandoned connections absorbed")


def _inject_queue_saturation(
    server: ReproServer, result: ServerChaosCaseResult
) -> None:
    """A burst past the admission bound is shed with 429 + Retry-After."""
    kb = next(iter(server.kb_paths))
    stall_body = json.dumps(
        ProbeRequest(
            kind="debug_stall",
            kb=kb,
            deadline_ms=10_000.0,
            stall_s=0.5,
        ).to_wire()
    )
    outcomes: List[Tuple[int, str, Dict[str, str]]] = []
    lock = threading.Lock()

    def fire() -> None:
        outcome = _post(server.address, stall_body, timeout=20.0)
        with lock:
            outcomes.append(outcome)

    burst = [
        threading.Thread(target=fire)
        for _ in range(server.max_queue + 6)
    ]
    for thread in burst:
        thread.start()
    for thread in burst:
        thread.join(timeout=30.0)
    rejected = [
        (status, body, headers)
        for status, body, headers in outcomes
        if status == 429
    ]
    if not rejected:
        result.mismatches.append(
            "no request was shed by admission control during the burst"
        )
    for status, body, headers in rejected:
        if "Retry-After" not in headers:
            result.mismatches.append("a 429 response lacked Retry-After")
            break
        if ProbeResponse.from_json(body).status != "rejected":
            result.mismatches.append(
                f"a 429 response carried a non-rejected body: {body!r}"
            )
            break
    result.notes.append(
        f"burst of {len(burst)}: {len(rejected)} shed with 429"
    )


def _check_trace_plane(
    server: ReproServer, result: ServerChaosCaseResult
) -> None:
    """The tracing plane survived the fault: traces stored and served."""
    if not server.tracing_enabled:
        return
    trace_ids = server.traces.ids()
    if not trace_ids:
        result.mismatches.append("trace store empty after recovery replay")
        return
    if _get(server.address, f"/trace/{trace_ids[0]}") != 200:
        result.mismatches.append(
            f"stored trace {trace_ids[0]!r} not served by GET /trace/<id>"
        )
    if len(server.journal) == 0:
        result.mismatches.append("request journal empty after recovery replay")
    result.notes.append(
        f"trace plane: {len(trace_ids)} stored traces, "
        f"{server.journal.lines_total} journal lines"
    )


_SCENARIOS = {
    "worker_kill": _inject_worker_kill,
    "stall": _inject_stall,
    "malformed": _inject_malformed,
    "disconnect": _inject_disconnect,
    "queue_saturation": _inject_queue_saturation,
}


def run_server_chaos_case(
    fault: str,
    kb_path: str,
    kb_name: str = "university",
    cold_transcript: Optional[List[str]] = None,
    battery: Optional[List[ProbeRequest]] = None,
) -> ServerChaosCaseResult:
    """One scenario: inject the fault, then byte-compare recovery.

    ``cold_transcript`` (the battery bodies of a server that never saw
    a fault) may be passed in so a suite pays the cold run once; when
    omitted it is produced by a dedicated cold server first.
    """
    if fault not in _SCENARIOS:
        raise ValueError(
            f"unknown server fault {fault!r}; pick from {SERVER_FAULT_KINDS}"
        )
    result = ServerChaosCaseResult(fault=fault)
    if battery is None:
        battery = battery_for(kb_name, kb_path)
    if cold_transcript is None:
        cold = _server(kb_name, kb_path, chaos=False)
        try:
            if not _wait_ready(cold.address):
                result.mismatches.append("cold server never became ready")
                return result
            cold_transcript = _transcript(cold.address, battery)
        finally:
            cold.close()

    queue_bound = 2 if fault == "queue_saturation" else 16
    server = _server(kb_name, kb_path, max_queue=queue_bound)
    try:
        if not _wait_ready(server.address):
            result.mismatches.append("chaos server never became ready")
            return result
        # Warm the caches first so the fault hits a *warm* server — the
        # strictest reading of "recovery must equal a cold server".
        _transcript(server.address, battery[:3])
        _SCENARIOS[fault](server, result)
        if not _wait_ready(server.address):
            result.mismatches.append("server unready after fault recovery")
            return result
        recovered = _transcript(server.address, battery)
        for index, (cold_body, warm_body) in enumerate(
            zip(cold_transcript, recovered)
        ):
            if cold_body != warm_body:
                result.mismatches.append(
                    f"probe {index} diverged after recovery: "
                    f"cold={cold_body!r} recovered={warm_body!r}"
                )
        _check_trace_plane(server, result)
    finally:
        server.close()
    return result


def run_server_chaos_suite(
    kb_path: str = "ontologies/university.kb4",
    kb_name: str = "university",
    faults: Sequence[str] = SERVER_FAULT_KINDS,
) -> ServerChaosReport:
    """Every fault scenario against one served KB, sharing one cold run."""
    battery = battery_for(kb_name, kb_path)
    report = ServerChaosReport()
    cold = _server(kb_name, kb_path, chaos=False)
    try:
        if not _wait_ready(cold.address):
            case = ServerChaosCaseResult(fault="setup")
            case.mismatches.append("cold server never became ready")
            report.cases.append(case)
            return report
        cold_transcript = _transcript(cold.address, battery)
    finally:
        cold.close()
    for fault in faults:
        report.cases.append(
            run_server_chaos_case(
                fault,
                kb_path,
                kb_name=kb_name,
                cold_transcript=cold_transcript,
                battery=battery,
            )
        )
    return report
