"""Executable reproductions of every table, example, and claim in the paper.

Each ``experiment_*`` function recomputes one artefact and returns a
:class:`ExperimentResult` whose rows can be printed as a paper-style
table; ``python -m repro.harness.experiments`` runs the whole battery.
The pytest benchmarks wrap the same functions, so EXPERIMENTS.md and the
benchmark output always agree.

Index (see DESIGN.md section 4):

* Tables 1-3  — constructor/axiom semantics checked row by row;
* Table 4    — the nine model patterns of Example 4 via enumeration;
* Examples 1-5 — the worked examples, each query compared to the paper;
* Theorem 6 / Lemma 5 — model correspondence on random KBs;
* scaling claims — transformation linearity, reduction overhead,
  paraconsistency vs the three baselines.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines import (
    ClassicalBaseline,
    SelectionReasoner,
    StratifiedReasoner,
    default_stratification,
)
from ..dl import axioms as ax
from ..dl.concepts import (
    And,
    AtLeast,
    AtMost,
    AtomicConcept,
    Exists,
    Forall,
    Not,
    OneOf,
    Or,
    TOP,
    BOTTOM,
)
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..dl.roles import AtomicRole
from ..four_dl.axioms4 import (
    KnowledgeBase4,
    collapse_to_classical,
    internal,
    material,
    strong,
)
from ..four_dl.induced import classical_induced, four_induced
from ..four_dl.reasoner4 import Reasoner4
from ..four_dl.transform import transform_kb
from ..fourvalued.bilattice import BilatticePair
from ..fourvalued.truth import FourValue
from ..semantics.enumeration import (
    enumerate_classical_models,
    enumerate_four_models,
    truth_patterns,
)
from ..semantics.four_interpretation import FourInterpretation, RolePair
from ..semantics.interpretation import Interpretation
from ..workloads.generators import (
    GeneratorConfig,
    generate_kb,
    generate_kb4,
    inject_contradictions4,
)
from ..workloads.scenarios import medical_access_control
from .tables import format_table


@dataclass
class ExperimentResult:
    """One reproduced artefact: a table of rows plus a pass/fail verdict."""

    name: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    passed: bool
    note: str = ""

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        title = f"== {self.name} [{verdict}] =="
        body = format_table(self.headers, self.rows, title=title)
        if self.note:
            body += f"\n{self.note}"
        return body


# ---------------------------------------------------------------------------
# Tables 1-3: semantics checked row by row
# ---------------------------------------------------------------------------

def experiment_table1() -> ExperimentResult:
    """Check every Table 1 constructor row on a reference interpretation."""
    a, b, c = "a", "b", "c"
    A = AtomicConcept("A")
    B = AtomicConcept("B")
    r = AtomicRole("r")
    interpretation = Interpretation(
        domain=frozenset({a, b, c}),
        concept_ext={A: frozenset({a, b}), B: frozenset({b})},
        role_ext={r: frozenset({(a, b), (b, c), (a, c)})},
        individual_map={Individual("a"): a, Individual("b"): b},
    )
    checks: List[Tuple[str, object, object]] = [
        ("atomic A", interpretation.extension(A), frozenset({a, b})),
        ("Thing", interpretation.extension(TOP), frozenset({a, b, c})),
        ("Nothing", interpretation.extension(BOTTOM), frozenset()),
        ("not A", interpretation.extension(Not(A)), frozenset({c})),
        (
            "A and B",
            interpretation.extension(And.of(A, B)),
            frozenset({b}),
        ),
        (
            "A or B",
            interpretation.extension(Or.of(A, B)),
            frozenset({a, b}),
        ),
        (
            "{a, b}",
            interpretation.extension(OneOf.of("a", "b")),
            frozenset({a, b}),
        ),
        (
            "r some B",
            interpretation.extension(Exists(r, B)),
            frozenset({a}),
        ),
        (
            "r only B",
            interpretation.extension(Forall(r, B)),
            frozenset({c}),
        ),
        (
            "inverse(r) some A",
            interpretation.extension(Exists(r.inverse(), A)),
            frozenset({b, c}),
        ),
        (
            "r min 2",
            interpretation.extension(AtLeast(2, r)),
            frozenset({a}),
        ),
        (
            "r max 1",
            interpretation.extension(AtMost(1, r)),
            frozenset({b, c}),
        ),
    ]
    rows = [
        (name, sorted(map(str, computed)), sorted(map(str, expected)),
         "ok" if computed == expected else "MISMATCH")
        for name, computed, expected in checks
    ]
    passed = all(row[3] == "ok" for row in rows)
    return ExperimentResult(
        "Table 1 (classical constructor semantics)",
        ["constructor", "computed", "expected", "status"],
        rows,
        passed,
    )


def experiment_table2() -> ExperimentResult:
    """Check every Table 2 four-valued constructor row."""
    a, b = "a", "b"
    A = AtomicConcept("A")
    B = AtomicConcept("B")
    r = AtomicRole("r")
    interpretation = FourInterpretation(
        domain=frozenset({a, b}),
        concept_ext={
            A: BilatticePair(frozenset({a}), frozenset({a, b})),
            B: BilatticePair(frozenset({a, b}), frozenset()),
        },
        role_ext={r: RolePair(frozenset({(a, b)}), frozenset({(a, a), (a, b)}))},
        individual_map={Individual("a"): a, Individual("b"): b},
    )

    def pair(p, n):
        return BilatticePair(frozenset(p), frozenset(n))

    checks: List[Tuple[str, BilatticePair, BilatticePair]] = [
        ("atomic A", interpretation.extension(A), pair({a}, {a, b})),
        ("Thing", interpretation.extension(TOP), pair({a, b}, set())),
        ("Nothing", interpretation.extension(BOTTOM), pair(set(), {a, b})),
        ("not A", interpretation.extension(Not(A)), pair({a, b}, {a})),
        (
            "A and B",
            interpretation.extension(And.of(A, B)),
            pair({a}, {a, b}),
        ),
        (
            "A or B",
            interpretation.extension(Or.of(A, B)),
            pair({a, b}, set()),
        ),
        # Exists: positive needs a positive r-edge into proj+(B)={a,b}: a
        # has (a,b).  Negative: all positive r-successors in proj-(B)={}:
        # b has none (vacuous), a has b which is not in {} -> only b.
        ("r some B", interpretation.extension(Exists(r, B)), pair({a}, {b})),
        # Forall positive: all positive successors in proj+(B): both
        # (vacuous for b).  Negative: some positive successor in proj-(B):
        # nobody.
        ("r only B", interpretation.extension(Forall(r, B)), pair({a, b}, set())),
        # AtLeast 1: positive counts proj+ successors (a has 1, b has 0);
        # negative counts y with (x,y) not in proj-: a has 0 such, b has 2.
        (
            "r min 1",
            interpretation.extension(AtLeast(1, r)),
            pair({a}, {a}),
        ),
        # AtMost 0: positive: x with #(y not in proj-) <= 0 -> a;
        # negative: x with #proj+ > 0 -> a.
        (
            "r max 0",
            interpretation.extension(AtMost(0, r)),
            pair({a}, {a}),
        ),
    ]
    rows = [
        (
            name,
            f"<{sorted(map(str, computed.positive))}, {sorted(map(str, computed.negative))}>",
            f"<{sorted(map(str, expected.positive))}, {sorted(map(str, expected.negative))}>",
            "ok" if computed == expected else "MISMATCH",
        )
        for name, computed, expected in checks
    ]
    passed = all(row[3] == "ok" for row in rows)
    return ExperimentResult(
        "Table 2 (four-valued constructor semantics)",
        ["constructor", "computed <P,N>", "expected <P,N>", "status"],
        rows,
        passed,
    )


def experiment_table3() -> ExperimentResult:
    """Check the Table 3 axiom semantics: all three inclusion strengths."""
    a, b = "a", "b"
    A = AtomicConcept("A")
    B = AtomicConcept("B")

    def interp(a_pair: BilatticePair, b_pair: BilatticePair) -> FourInterpretation:
        return FourInterpretation(
            domain=frozenset({a, b}),
            concept_ext={A: a_pair, B: b_pair},
            individual_map={},
        )

    def pair(p, n):
        return BilatticePair(frozenset(p), frozenset(n))

    # <P_A, N_A>, <P_B, N_B>, expected (material, internal, strong)
    cases = [
        # Classical-looking inclusion: A=<{a},{b}>, B=<{a,b},{}>; material
        # holds because domain minus N_A = {a} is inside P_B.
        (pair({a}, {b}), pair({a, b}, set()), (True, True, True), "A<=B classically"),
        # Material fails when an unmentioned element lacks B-evidence:
        # A=<{a},{}>, B=<{a},{}> leaves b outside both N_A and P_B.
        (pair({a}, set()), pair({a}, set()), (False, True, True), "material needs totality"),
        # Material holds because the domain minus N_A is covered by P_B.
        (pair({a}, {a, b}), pair(set(), set()), (True, False, False), "all of A negated"),
        # Internal holds, strong fails on the negative direction.
        (pair({a}, set()), pair({a}, {b}), (False, True, False), "neg evidence not propagated"),
        # Everything fails.
        (pair({a}, set()), pair(set(), set()), (False, False, False), "no support"),
        # Strong holds with contradictory A.
        (pair({a}, {a, b}), pair({a, b}, {a}), (True, True, True), "contradictions tolerated"),
    ]
    rows = []
    passed = True
    for a_pair, b_pair, expected, label in cases:
        interpretation = interp(a_pair, b_pair)
        computed = (
            interpretation.satisfies(material(A, B)),
            interpretation.satisfies(internal(A, B)),
            interpretation.satisfies(strong(A, B)),
        )
        status = "ok" if computed == expected else "MISMATCH"
        passed &= status == "ok"
        rows.append((label, computed, expected, status))
    return ExperimentResult(
        "Table 3 (inclusion axiom semantics)",
        ["case", "computed (mat, int, strong)", "expected", "status"],
        rows,
        passed,
    )


# ---------------------------------------------------------------------------
# Table 4 and Example 4
# ---------------------------------------------------------------------------

#: The nine truth-value patterns of the paper's Table 4 (M1-M9), as rows
#: (hasChild(s,k), >=1.hasChild(s), Parent(s), Married(s)).
TABLE4_EXPECTED = frozenset(
    {
        ("t", "t", "t", "TOP"),
        ("t", "t", "TOP", "TOP"),
        ("TOP", "t", "t", "TOP"),
        ("TOP", "t", "TOP", "TOP"),  # M1-M4
        ("t", "t", "TOP", "f"),
        ("TOP", "t", "TOP", "f"),  # M5-M6
        ("TOP", "TOP", "t", "TOP"),
        ("TOP", "TOP", "TOP", "TOP"),  # M7-M8
        ("TOP", "TOP", "TOP", "f"),  # M9
    }
)


def example4_kb4() -> KnowledgeBase4:
    """The paper's Example 4 knowledge base."""
    parent = AtomicConcept("Parent")
    married = AtomicConcept("Married")
    has_child = AtomicRole("hasChild")
    kb4 = KnowledgeBase4()
    kb4.add(internal(AtLeast(1, has_child), parent))
    kb4.add(material(parent, married))
    kb4.add(ax.RoleAssertion(has_child, Individual("smith"), Individual("kate")))
    kb4.add(ax.ConceptAssertion(Individual("smith"), Not(married)))
    return kb4


def experiment_table4() -> ExperimentResult:
    """Enumerate Example 4's models and compare patterns with Table 4."""
    kb4 = example4_kb4()
    has_child = AtomicRole("hasChild")
    smith, kate = Individual("smith"), Individual("kate")
    models = list(
        enumerate_four_models(kb4, irreflexive_roles=[has_child])
    )
    queries = [
        ("hasChild(s,k)", (has_child, smith, kate)),
        (">=1.hasChild(s)", (AtLeast(1, has_child), smith)),
        ("Parent(s)", (AtomicConcept("Parent"), smith)),
        ("Married(s)", (AtomicConcept("Married"), smith)),
    ]
    patterns = truth_patterns(models, queries)
    rows = [
        (
            f"M-pattern {index + 1}",
            *pattern,
            "ok" if pattern in TABLE4_EXPECTED else "UNEXPECTED",
        )
        for index, pattern in enumerate(sorted(patterns))
    ]
    passed = patterns == TABLE4_EXPECTED
    return ExperimentResult(
        "Table 4 (four-valued models of Example 4)",
        ["model", "hasChild(s,k)", ">=1.hasChild(s)", "Parent(s)", "Married(s)", "status"],
        rows,
        passed,
        note=f"{len(models)} models over {{smith, kate}} realise exactly "
        f"{len(patterns)} truth patterns (paper lists 9: M1-M9).",
    )


# ---------------------------------------------------------------------------
# Examples 1-3 and 5
# ---------------------------------------------------------------------------

def experiment_example1() -> ExperimentResult:
    """Example 1: paraconsistent propagation through an existential."""
    doctor = AtomicConcept("Doctor")
    patient = AtomicConcept("Patient")
    has_patient = AtomicRole("hasPatient")
    john, mary, bill = (Individual(n) for n in ("john", "mary", "bill"))
    kb4 = KnowledgeBase4()
    kb4.add(internal(Exists(has_patient, patient), doctor))
    kb4.add(ax.ConceptAssertion(john, doctor))
    kb4.add(ax.ConceptAssertion(john, Not(doctor)))
    kb4.add(ax.ConceptAssertion(mary, patient))
    kb4.add(ax.RoleAssertion(has_patient, bill, mary))
    reasoner = Reasoner4(kb4)
    checks = [
        ("KB4 satisfiable", reasoner.is_satisfiable(), True),
        ("evidence: bill is a doctor", reasoner.evidence_for(bill, doctor), True),
        (
            "evidence: bill is NOT a doctor",
            reasoner.evidence_against(bill, doctor),
            False,
        ),
        ("john's Doctor status", reasoner.assertion_value(john, doctor), FourValue.BOTH),
        (
            "classical KB trivial",
            not Reasoner(collapse_to_classical(kb4)).is_consistent(),
            True,
        ),
    ]
    rows = [
        (name, str(computed), str(expected), "ok" if computed == expected else "MISMATCH")
        for name, computed, expected in checks
    ]
    return ExperimentResult(
        "Example 1 (useful inference under contradiction)",
        ["query", "computed", "expected", "status"],
        rows,
        all(r[3] == "ok" for r in rows),
    )


def experiment_example2() -> ExperimentResult:
    """Example 2: both sides of the record-access conflict answered yes."""
    scenario = medical_access_control(n_staff=1, n_conflicted=1)
    reasoner = Reasoner4(scenario.kb4)
    john = Individual("staff0")
    readers = AtomicConcept("ReadPatientRecordTeam")
    patient = AtomicConcept("Patient")
    checks = [
        ("KB4 satisfiable", reasoner.is_satisfiable(), True),
        ("evidence: may read", reasoner.evidence_for(john, readers), True),
        ("evidence: may not read", reasoner.evidence_against(john, readers), True),
        ("read status", reasoner.assertion_value(john, readers), FourValue.BOTH),
        ("patient status", reasoner.assertion_value(john, patient), FourValue.NEITHER),
    ]
    rows = [
        (name, str(computed), str(expected), "ok" if computed == expected else "MISMATCH")
        for name, computed, expected in checks
    ]
    return ExperimentResult(
        "Example 2 (localised contradiction)",
        ["query", "computed", "expected", "status"],
        rows,
        all(r[3] == "ok" for r in rows),
    )


def example3_kb4() -> KnowledgeBase4:
    """The paper's Example 3 (penguin) knowledge base."""
    bird, fly, penguin, wing = (
        AtomicConcept(n) for n in ("Bird", "Fly", "Penguin", "Wing")
    )
    has_wing = AtomicRole("hasWing")
    tweety, w = Individual("tweety"), Individual("w")
    kb4 = KnowledgeBase4()
    kb4.add(material(And.of(bird, Exists(has_wing, wing)), fly))
    kb4.add(internal(penguin, bird))
    kb4.add(internal(penguin, Exists(has_wing, wing)))
    kb4.add(internal(penguin, Not(fly)))
    kb4.add(ax.ConceptAssertion(tweety, bird))
    kb4.add(ax.ConceptAssertion(tweety, penguin))
    kb4.add(ax.ConceptAssertion(w, wing))
    kb4.add(ax.RoleAssertion(has_wing, tweety, w))
    return kb4


def experiment_example3_5() -> ExperimentResult:
    """Examples 3 and 5: exceptions via material inclusion + transformation."""
    kb4 = example3_kb4()
    fly = AtomicConcept("Fly")
    tweety = Individual("tweety")
    reasoner = Reasoner4(kb4)
    induced = transform_kb(kb4)
    checks = [
        ("KB4 satisfiable", reasoner.is_satisfiable(), True),
        ("Fly-(tweety) holds", reasoner.evidence_against(tweety, fly), True),
        ("Fly+(tweety) holds", reasoner.evidence_for(tweety, fly), False),
        ("tweety's Fly status", reasoner.assertion_value(tweety, fly), FourValue.FALSE),
        (
            "classical projection unsatisfiable",
            not Reasoner(collapse_to_classical(kb4)).is_consistent(),
            True,
        ),
        (
            "induced KB axiom count",
            len(induced),
            len(kb4),
        ),
    ]
    # The paper displays a concrete model with Bird(tweety) = TOP and
    # Fly(tweety) = f; Definition 9 extraction reproduces that shape.
    model = reasoner.four_model()
    if model is not None:
        checks.append(
            (
                "extracted model: Fly(tweety)",
                model.concept_value(fly, tweety),
                FourValue.FALSE,
            )
        )
        checks.append(
            (
                "extracted model: Bird(tweety)",
                model.concept_value(AtomicConcept("Bird"), tweety),
                FourValue.BOTH,
            )
        )
    rows = [
        (name, str(computed), str(expected), "ok" if computed == expected else "MISMATCH")
        for name, computed, expected in checks
    ]
    return ExperimentResult(
        "Examples 3 & 5 (exceptions; reasoning via the induced KB)",
        ["query", "computed", "expected", "status"],
        rows,
        all(r[3] == "ok" for r in rows),
    )


def experiment_example4_queries() -> ExperimentResult:
    """Example 4 at the entailment level: exception, not contradiction."""
    kb4 = example4_kb4()
    reasoner = Reasoner4(kb4)
    smith = Individual("smith")
    parent = AtomicConcept("Parent")
    married = AtomicConcept("Married")
    checks = [
        ("KB4 satisfiable", reasoner.is_satisfiable(), True),
        ("smith's Parent status", reasoner.assertion_value(smith, parent), FourValue.TRUE),
        (
            "smith's Married status",
            reasoner.assertion_value(smith, married),
            FourValue.FALSE,
        ),
        (
            "classical projection unsatisfiable",
            not Reasoner(collapse_to_classical(kb4)).is_consistent(),
            True,
        ),
    ]
    rows = [
        (name, str(computed), str(expected), "ok" if computed == expected else "MISMATCH")
        for name, computed, expected in checks
    ]
    return ExperimentResult(
        "Example 4 (number restrictions and material exceptions)",
        ["query", "computed", "expected", "status"],
        rows,
        all(r[3] == "ok" for r in rows),
    )


# ---------------------------------------------------------------------------
# Theorem 6 / Lemma 5: model correspondence on random KBs
# ---------------------------------------------------------------------------

def experiment_theorem6(trials: int = 30, seed: int = 7) -> ExperimentResult:
    """Check the model correspondence on random small KB4s.

    For each random KB4 the experiment enumerates its four-valued models,
    maps each through Definition 8 and checks the image is a classical
    model of the induced KB — and back through Definition 9.  It also
    compares four-valued satisfiability-by-enumeration with the reduction
    reasoner's verdict.
    """
    rng = random.Random(seed)
    rows = []
    passed = True
    agree = 0
    for trial in range(trials):
        config = GeneratorConfig(
            n_concepts=2,
            n_roles=1,
            n_individuals=2,
            n_tbox=rng.randint(1, 3),
            n_abox=rng.randint(1, 4),
            max_depth=1,
            seed=rng.randint(0, 10**9),
        )
        kb4 = generate_kb4(config)
        induced_kb = transform_kb(kb4)
        models = []
        for model in enumerate_four_models(kb4):
            models.append(model)
            if len(models) >= 5:
                break
        forward_ok = all(
            classical_induced(model, kb4).is_model(induced_kb) for model in models
        )
        reduction_sat = Reasoner4(kb4).is_satisfiable()
        enumeration_sat = bool(models)
        # Enumeration failing to find a model is inconclusive (larger
        # domains may work), but a found model forces satisfiability.
        consistent = forward_ok and (not enumeration_sat or reduction_sat)
        agree += consistent
        passed &= consistent
        if trial < 5 or not consistent:
            rows.append(
                (
                    trial,
                    len(models),
                    forward_ok,
                    enumeration_sat,
                    reduction_sat,
                    "ok" if consistent else "MISMATCH",
                )
            )
    rows.append(("total agreeing", agree, "", "", "", f"{agree}/{trials}"))
    return ExperimentResult(
        "Theorem 6 (model correspondence, random KB4s)",
        ["trial", "#models", "Def8 image is model", "enum sat", "reduction sat", "status"],
        rows,
        passed,
    )


# ---------------------------------------------------------------------------
# Scaling claims
# ---------------------------------------------------------------------------

def experiment_transform_scaling(
    sizes: Sequence[int] = (10, 20, 40, 80, 160, 320),
) -> ExperimentResult:
    """Transformation cost vs KB size: the polynomial (linear) claim."""
    rows = []
    times: List[float] = []
    node_ratios: List[float] = []
    for size in sizes:
        config = GeneratorConfig(
            n_concepts=max(4, size // 4),
            n_roles=3,
            n_individuals=max(4, size // 4),
            n_tbox=size // 2,
            n_abox=size - size // 2,
            max_depth=2,
            seed=size,
        )
        kb4 = generate_kb4(config)
        started = time.perf_counter()
        induced = transform_kb(kb4)
        elapsed = time.perf_counter() - started
        times.append(elapsed)
        ratio = induced.size() / max(1, collapse_to_classical(kb4).size())
        node_ratios.append(ratio)
        rows.append(
            (size, len(kb4), len(induced), f"{ratio:.2f}", f"{elapsed * 1e3:.2f} ms")
        )
    # Linearity check: time per axiom must not blow up across the sweep.
    per_axiom_first = times[0] / sizes[0]
    per_axiom_last = times[-1] / sizes[-1]
    growth = per_axiom_last / per_axiom_first if per_axiom_first else 1.0
    passed = growth < 10 and max(node_ratios) < 4
    return ExperimentResult(
        "Transformation scaling (polynomial-time claim, Section 4.1)",
        ["axioms", "|KB4|", "|induced KB|", "size ratio", "time"],
        rows,
        passed,
        note=f"per-axiom time growth across sweep: {growth:.2f}x (linear ~ 1x)",
    )


def experiment_paraconsistency(
    contradiction_counts: Sequence[int] = (0, 1, 2, 4),
) -> ExperimentResult:
    """Informative answers vs injected contradictions, all four systems.

    The classical baseline collapses at the first contradiction; the
    selection and stratification baselines stay consistent by dropping
    axioms; SHOIN(D)4 answers everything, flagging the conflicting facts
    as BOTH.  "informative" counts queries whose answer still reflects
    the intended KB content.
    """
    rows = []
    passed = True
    for count in contradiction_counts:
        scenario = medical_access_control(n_staff=4, n_conflicted=0)
        kb4 = scenario.kb4
        injected = (
            inject_contradictions4(kb4, count, seed=count) if count else []
        )
        classical_kb = collapse_to_classical(kb4)
        queries = scenario.queries

        classical = ClassicalBaseline(classical_kb)
        classical_informative = (
            0
            if classical.is_trivial()
            else sum(
                1
                for individual, concept in queries
                if classical.query_status(individual, concept) != "both"
            )
        )
        selection = SelectionReasoner(classical_kb)
        selection_informative = sum(
            1
            for individual, concept in queries
            if selection.query(individual, concept) != "undetermined"
        )
        stratified = StratifiedReasoner(default_stratification(classical_kb))
        stratified_informative = sum(
            1
            for individual, concept in queries
            if stratified.query(individual, concept) != "undetermined"
        )
        four = Reasoner4(kb4)
        four_informative = sum(
            1
            for individual, concept in queries
            if four.assertion_value(individual, concept) is not FourValue.NEITHER
        )
        conflicts_found = len(four.contradictory_facts())
        rows.append(
            (
                count,
                f"{classical_informative}/{len(queries)}",
                f"{selection_informative}/{len(queries)}",
                f"{stratified_informative}/{len(queries)}",
                f"{four_informative}/{len(queries)}",
                conflicts_found,
            )
        )
        if count > 0 and classical_informative != 0:
            passed = False
    return ExperimentResult(
        "Paraconsistency vs baselines (injected contradictions)",
        [
            "#contradictions",
            "classical informative",
            "selection informative",
            "stratified informative",
            "SHOIN(D)4 informative",
            "conflicts localised",
        ],
        rows,
        passed,
        note="classical collapses to 0 informative answers at the first "
        "contradiction; SHOIN(D)4 keeps answering and pinpoints conflicts.",
    )


def experiment_reduction_overhead(
    sizes: Sequence[int] = (8, 16, 32),
) -> ExperimentResult:
    """Reasoning cost: classical KB vs its four-valued reduction.

    The paper argues SHOIN(D)4 keeps the complexity of SHOIN(D); here the
    same consistent KB is checked classically and through the doubled
    signature, reporting the slowdown factor.
    """
    rows = []
    for size in sizes:
        config = GeneratorConfig(
            n_concepts=max(4, size // 2),
            n_roles=2,
            n_individuals=max(4, size // 2),
            n_tbox=size // 2,
            n_abox=size - size // 2,
            max_depth=1,
            seed=size * 13 + 1,
        )
        kb = generate_kb(config)
        kb4 = None
        from ..four_dl.axioms4 import from_classical

        kb4 = from_classical(kb)
        started = time.perf_counter()
        classical_ok = Reasoner(kb).is_consistent()
        classical_time = time.perf_counter() - started
        started = time.perf_counter()
        four_ok = Reasoner4(kb4).is_satisfiable()
        four_time = time.perf_counter() - started
        factor = four_time / classical_time if classical_time > 0 else float("inf")
        rows.append(
            (
                size,
                classical_ok,
                four_ok,
                f"{classical_time * 1e3:.2f} ms",
                f"{four_time * 1e3:.2f} ms",
                f"{factor:.2f}x",
            )
        )
    return ExperimentResult(
        "Reduction reasoning overhead (same-complexity claim, Section 5)",
        ["axioms", "classical sat", "4-valued sat", "classical time", "4-valued time", "factor"],
        rows,
        True,
    )


def experiment_extensions() -> ExperimentResult:
    """Sanity battery for the beyond-the-paper features (DESIGN.md §6)."""
    import random as random_module

    from ..dl.concepts import QualifiedAtLeast
    from ..dl.axioms import NegativeRoleAssertion, DifferentIndividuals
    from ..four_dl.metrics import inconsistency_degree
    from ..four_dl.defeasible import DefeasibleReasoner4
    from ..fourvalued.propositional import Atom
    from ..fourvalued.reduction import entails_by_reduction
    from ..fourvalued.propositional import entails as tt_entails

    checks: List[Tuple[str, object, object]] = []

    # Qualified counting through the reduction.
    busy = AtomicConcept("Busy")
    doctor = AtomicConcept("Doctor")
    has_patient = AtomicRole("hasPatient")
    a, p1, p2 = Individual("a"), Individual("p1"), Individual("p2")
    kb4 = KnowledgeBase4()
    kb4.add(internal(QualifiedAtLeast(2, has_patient, doctor), busy))
    kb4.add(ax.RoleAssertion(has_patient, a, p1))
    kb4.add(ax.RoleAssertion(has_patient, a, p2))
    kb4.add(ax.ConceptAssertion(p1, doctor))
    kb4.add(ax.ConceptAssertion(p2, doctor))
    kb4.add(DifferentIndividuals(p1, p2))
    checks.append(
        (
            "qualified >=2 via reduction",
            Reasoner4(kb4).assertion_value(a, busy),
            FourValue.TRUE,
        )
    )

    # Conflicting role evidence stays local.
    r = AtomicRole("r")
    kb4_roles = KnowledgeBase4()
    kb4_roles.add(ax.RoleAssertion(r, a, p1))
    kb4_roles.add(NegativeRoleAssertion(r, a, p1))
    role_reasoner = Reasoner4(kb4_roles)
    checks.append(
        (
            "conflicting role evidence",
            (role_reasoner.is_satisfiable(), role_reasoner.role_value(r, a, p1)),
            (True, FourValue.BOTH),
        )
    )

    # Inconsistency degree is a calibrated fraction.
    kb4_deg = KnowledgeBase4()
    kb4_deg.add(ax.ConceptAssertion(a, busy))
    kb4_deg.add(ax.ConceptAssertion(a, Not(busy)))
    kb4_deg.add(ax.ConceptAssertion(p1, doctor))
    checks.append(
        (
            "inconsistency degree (1 of 4 facts)",
            inconsistency_degree(Reasoner4(kb4_deg)),
            0.25,
        )
    )

    # Prioritised adjudication prefers the more certain stratum.
    strata = [
        (ax.ConceptAssertion(a, busy), 0),
        (ax.ConceptAssertion(a, Not(busy)), 1),
    ]
    verdict = DefeasibleReasoner4(strata).adjudicate(a, busy)
    checks.append(
        (
            "priority adjudication",
            (verdict.value, verdict.preferred, verdict.conflict_stratum),
            (FourValue.BOTH, FourValue.TRUE, 1),
        )
    )

    # Propositional SAT reduction agrees with truth tables.
    rng = random_module.Random(11)
    atoms = [Atom(f"q{i}") for i in range(3)]

    def rand_formula(depth=2):
        if depth == 0 or rng.random() < 0.3:
            return rng.choice(atoms)
        kind = rng.choice(["not", "and", "or", "int", "strong"])
        left = rand_formula(depth - 1)
        if kind == "not":
            return ~left
        right = rand_formula(depth - 1)
        return {
            "and": left & right,
            "or": left | right,
            "int": left.internal(right),
            "strong": left.strong(right),
        }[kind]

    agreements = sum(
        1
        for _ in range(50)
        for premises in [[rand_formula() for _ in range(2)]]
        for conclusion in [rand_formula()]
        if entails_by_reduction(premises, conclusion)
        == tt_entails(premises, conclusion)
    )
    checks.append(("SAT reduction vs truth tables (50 sequents)", agreements, 50))

    rows = [
        (name, str(computed), str(expected), "ok" if computed == expected else "MISMATCH")
        for name, computed, expected in checks
    ]
    return ExperimentResult(
        "Extensions (DESIGN.md section 6 features)",
        ["check", "computed", "expected", "status"],
        rows,
        all(r[3] == "ok" for r in rows),
    )


def experiment_explanations() -> ExperimentResult:
    """Explanation battery: the conflicts of Examples 1, 2, and 3 all
    yield the hand-identifiable minimal justification, verified minimal."""
    from ..dl.printer import render_axiom
    from ..explain import is_minimal

    def cited(kb4: KnowledgeBase4, query) -> str:
        explanation = Reasoner4(kb4).explain(query)
        if not explanation.entailed:
            return "not entailed"
        return "; ".join(sorted(render_axiom(a) for a in explanation.justification))

    def expect(*axioms) -> str:
        return "; ".join(sorted(render_axiom(a) for a in axioms))

    def verified_minimal(kb4: KnowledgeBase4, query) -> bool:
        justification = Reasoner4(kb4).explain(query).justification
        return is_minimal(
            justification,
            lambda axioms: Reasoner4(
                KnowledgeBase4.of(axioms), use_cache=False
            ).entails(query),
        )

    doctor, patient = AtomicConcept("Doctor"), AtomicConcept("Patient")
    has_patient = AtomicRole("hasPatient")
    john, mary, bill = (Individual(n) for n in ("john", "mary", "bill"))
    propagation = internal(Exists(has_patient, patient), doctor)
    ex1 = KnowledgeBase4().add(
        propagation,
        ax.ConceptAssertion(john, doctor),
        ax.ConceptAssertion(john, Not(doctor)),
        ax.ConceptAssertion(mary, patient),
        ax.RoleAssertion(has_patient, bill, mary),
    )

    scenario = medical_access_control(n_staff=1, n_conflicted=1)
    staff0 = Individual("staff0")
    surgical = AtomicConcept("SurgicalTeam")
    urgency = AtomicConcept("UrgencyTeam")
    readers = AtomicConcept("ReadPatientRecordTeam")

    ex3 = example3_kb4()
    penguin, fly = AtomicConcept("Penguin"), AtomicConcept("Fly")
    tweety = Individual("tweety")

    checks = [
        (
            "ex1: why john IS a doctor",
            cited(ex1, ax.ConceptAssertion(john, doctor)),
            expect(ax.ConceptAssertion(john, doctor)),
        ),
        (
            "ex1: why john is NOT a doctor",
            cited(ex1, ax.ConceptAssertion(john, Not(doctor))),
            expect(ax.ConceptAssertion(john, Not(doctor))),
        ),
        (
            "ex1: why bill is a doctor (derived)",
            cited(ex1, ax.ConceptAssertion(bill, doctor)),
            expect(
                propagation,
                ax.ConceptAssertion(mary, patient),
                ax.RoleAssertion(has_patient, bill, mary),
            ),
        ),
        (
            "ex2: why staff0 may read",
            cited(scenario.kb4, ax.ConceptAssertion(staff0, readers)),
            expect(
                internal(urgency, readers),
                ax.ConceptAssertion(staff0, urgency),
            ),
        ),
        (
            "ex2: why staff0 may NOT read",
            cited(scenario.kb4, ax.ConceptAssertion(staff0, Not(readers))),
            expect(
                internal(surgical, Not(readers)),
                ax.ConceptAssertion(staff0, surgical),
            ),
        ),
        (
            "ex3: why tweety does not fly",
            cited(ex3, ax.ConceptAssertion(tweety, Not(fly))),
            expect(
                internal(penguin, Not(fly)),
                ax.ConceptAssertion(tweety, penguin),
            ),
        ),
        (
            "ex3: defeated default stays unexplained",
            cited(ex3, ax.ConceptAssertion(tweety, fly)),
            "not entailed",
        ),
        (
            "all justifications verified minimal",
            all(
                verified_minimal(kb4, query)
                for kb4, query in [
                    (ex1, ax.ConceptAssertion(john, doctor)),
                    (ex1, ax.ConceptAssertion(bill, doctor)),
                    (scenario.kb4, ax.ConceptAssertion(staff0, readers)),
                    (ex3, ax.ConceptAssertion(tweety, Not(fly))),
                ]
            ),
            True,
        ),
    ]
    rows = [
        (name, str(computed), str(expected), "ok" if computed == expected else "MISMATCH")
        for name, computed, expected in checks
    ]
    return ExperimentResult(
        "Explanations (minimal justifications for Examples 1-3 conflicts)",
        ["query", "computed", "expected", "status"],
        rows,
        all(r[3] == "ok" for r in rows),
    )


ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": experiment_table1,
    "table2": experiment_table2,
    "table3": experiment_table3,
    "table4": experiment_table4,
    "example1": experiment_example1,
    "example2": experiment_example2,
    "example3_5": experiment_example3_5,
    "example4": experiment_example4_queries,
    "theorem6": experiment_theorem6,
    "transform_scaling": experiment_transform_scaling,
    "paraconsistency": experiment_paraconsistency,
    "reduction_overhead": experiment_reduction_overhead,
    "extensions": experiment_extensions,
    "explanations": experiment_explanations,
}


def run_all(names: Optional[Sequence[str]] = None) -> List[ExperimentResult]:
    """Run (a subset of) the experiment battery."""
    selected = names or list(ALL_EXPERIMENTS)
    return [ALL_EXPERIMENTS[name]() for name in selected]


def main() -> int:
    results = run_all()
    for result in results:
        print(result.render())
        print()
    failures = [r.name for r in results if not r.passed]
    if failures:
        print("FAILED:", ", ".join(failures))
        return 1
    print(f"All {len(results)} experiments reproduce the paper.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
