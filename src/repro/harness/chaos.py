"""Fault-injection harness: chaos testing for the degradation layer.

Robustness claims are cheap; this module makes them testable.  It
deterministically injects faults into budgeted reasoning runs — budget
exhaustion, deadline expiry (via an injected fake clock), cooperative
cancellation, and arbitrary mid-search exceptions — at *seeded* tableau
steps, then verifies the two invariants the budget layer promises:

1. **No cache poisoning** — an aborted search never commits a verdict,
   so answers asked *after* an abort equal the answers of a cold
   reasoner that never saw the fault (the decided-only-commit invariant
   of :class:`~repro.dl.cache.QueryCache`);
2. **Clean rollback / reusability** — a :class:`~repro.dl.reasoner.Reasoner`
   whose search aborted at an arbitrary step stays fully usable: the
   trail is unwound, counters stay monotone, and every later unbudgeted
   probe decides exactly as a fresh reasoner would.

Additionally every *decided* verdict produced under chaos must equal the
cold verdict (UNKNOWN is the only permitted deviation — degradation is
sound, see THEORY.md §10).

Fault timing is deterministic: the cancel token fires (or raises) at the
N-th meter poll and the fake clock expires the deadline at the N-th
reading, where N comes from the case seed.  A failure therefore names an
exactly reproducible (KB, fault, step) triple.

Typical use::

    from repro.harness.chaos import run_chaos_suite
    report = run_chaos_suite(seeds=range(30))
    assert report.ok, report.render()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..dl.budget import Budget, CancelToken, Verdict
from ..dl.concepts import AtomicConcept
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..workloads.generators import GeneratorConfig, generate_kb

#: The injectable fault kinds, one per degradation pathway.
FAULT_KINDS: Tuple[str, ...] = (
    "cancel",
    "error",
    "deadline",
    "nodes",
    "branches",
    "trail",
)

#: Generator shape for chaos KBs: small enough to finish, rich enough to
#: branch (disjunctions force choice points, negations force clashes).
CHAOS_KB = dict(
    n_concepts=4, n_roles=2, n_individuals=3, n_tbox=5, n_abox=8, max_depth=2
)


class ChaosError(RuntimeError):
    """The injected mid-search exception (not a ReproError on purpose:
    it models a genuinely unexpected fault, e.g. a broken callback)."""


class ScriptedCancelToken(CancelToken):
    """A cancel token that fires at the N-th poll instead of on request.

    The budget meter polls the token once per search tick, so ``fire_at``
    addresses a deterministic tableau step.  With ``raise_error`` the
    token raises :class:`ChaosError` instead of cancelling, exercising
    the harness's arbitrary-exception containment path.
    """

    def __init__(self, fire_at: int, raise_error: bool = False):
        super().__init__()
        if fire_at < 1:
            raise ValueError(f"fire_at must be >= 1, got {fire_at!r}")
        self.fire_at = fire_at
        self.raise_error = raise_error
        self.polls = 0

    def is_set(self) -> bool:
        self.polls += 1
        if self.polls >= self.fire_at:
            if self.raise_error:
                raise ChaosError(f"injected fault at poll {self.polls}")
            return True
        return super().is_set()


class SteppedClock:
    """A deterministic monotone clock advancing ``step`` per reading.

    Injected through ``Budget(clock=...)`` it turns wall-clock deadlines
    into exact step counts: with ``step=s`` and ``deadline=k*s`` the
    k-th deadline check after the meter starts is the first to expire,
    independent of the host machine's speed.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = start
        self.step = step
        self.readings = 0

    def __call__(self) -> float:
        self.readings += 1
        value = self.now
        self.now += self.step
        return value


def fault_budget(fault: str, rng: random.Random) -> Budget:
    """A budget rigged to inject ``fault`` at an rng-seeded step."""
    if fault == "cancel":
        return Budget(cancel=ScriptedCancelToken(fire_at=rng.randint(1, 60)))
    if fault == "error":
        return Budget(
            cancel=ScriptedCancelToken(
                fire_at=rng.randint(1, 60), raise_error=True
            )
        )
    if fault == "deadline":
        # check_interval=1 so every tick reads the fake clock; deadline
        # expires at an exact, seeded reading count.
        return Budget(
            deadline=float(rng.randint(1, 40)),
            clock=SteppedClock(step=1.0),
            check_interval=1,
        )
    if fault == "nodes":
        return Budget(max_nodes=rng.randint(1, 4))
    if fault == "branches":
        return Budget(max_branches=rng.randint(1, 3))
    if fault == "trail":
        return Budget(max_trail=rng.randint(1, 24))
    raise ValueError(f"unknown fault kind: {fault!r}")


def probe_plan(
    kb: KnowledgeBase, max_atoms: int = 3, max_individuals: int = 2
) -> List[Tuple[str, tuple]]:
    """A deterministic battery of probes over the KB's signature.

    Mirrors the differential-fuzz battery: consistency first (the
    all-branches worst case), then subsumption pairs, then instance
    checks.  Returned as (kind, args) descriptors so the same plan can
    run through verdict APIs and boolean APIs alike.
    """
    atoms = sorted(kb.concepts_in_signature(), key=lambda a: a.name)
    atoms = atoms[:max_atoms]
    individuals = sorted(kb.individuals_in_signature(), key=lambda i: i.name)
    individuals = individuals[:max_individuals]
    plan: List[Tuple[str, tuple]] = [("consistency", ())]
    for sub in atoms:
        for sup in atoms:
            plan.append(("subsumes", (sup, sub)))
    for individual in individuals:
        for atom in atoms:
            plan.append(("instance", (individual, atom)))
    return plan


def run_probe(
    reasoner: Reasoner, kind: str, args: tuple, budget: Optional[Budget]
) -> Verdict:
    """Run one probe descriptor through the degrading verdict APIs."""
    if kind == "consistency":
        return reasoner.consistency_verdict(budget=budget)
    if kind == "subsumes":
        sup, sub = args
        return reasoner.subsumption_verdict(sup, sub, budget=budget)
    if kind == "instance":
        individual, atom = args
        return reasoner.instance_verdict(individual, atom, budget=budget)
    raise ValueError(f"unknown probe kind: {kind!r}")


@dataclass
class ChaosCaseResult:
    """The outcome of one seeded (KB, fault, search-mode) chaos case."""

    seed: int
    search: str
    fault: str
    decided: int = 0
    unknowns: int = 0
    #: Human-readable invariant violations; empty means the case passed.
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every invariant held for this case."""
        return not self.mismatches


@dataclass
class ChaosReport:
    """Aggregate over a chaos suite run."""

    cases: List[ChaosCaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every case passed."""
        return all(case.ok for case in self.cases)

    @property
    def unknowns(self) -> int:
        """Total probes degraded to UNKNOWN across the suite."""
        return sum(case.unknowns for case in self.cases)

    @property
    def decided(self) -> int:
        """Total probes decided despite the injected faults."""
        return sum(case.decided for case in self.cases)

    def failures(self) -> List[ChaosCaseResult]:
        """The cases with at least one invariant violation."""
        return [case for case in self.cases if not case.ok]

    def render(self) -> str:
        """A one-paragraph summary, listing violations if any."""
        lines = [
            f"chaos: {len(self.cases)} cases, {self.decided} decided, "
            f"{self.unknowns} degraded to UNKNOWN, "
            f"{len(self.failures())} failing"
        ]
        for case in self.failures():
            head = f"  seed={case.seed} search={case.search} fault={case.fault}:"
            lines.append(head)
            lines.extend(f"    {message}" for message in case.mismatches)
        return "\n".join(lines)


def run_chaos_case(
    seed: int, search: str = "trail", fault: Optional[str] = None
) -> ChaosCaseResult:
    """One chaos case: inject a fault, then verify both invariants.

    Builds the seeded KB, runs the probe battery with a freshly rigged
    fault budget per probe (so the fault strikes at a different seeded
    step of each search), then replays the same battery unbudgeted on
    the *same* reasoner and on a cold one, demanding identical decided
    answers everywhere.
    """
    rng = random.Random(seed * 7919 + 13)
    chosen = fault if fault is not None else rng.choice(FAULT_KINDS)
    kb = generate_kb(GeneratorConfig(seed=seed, **CHAOS_KB))
    plan = probe_plan(kb)
    result = ChaosCaseResult(seed=seed, search=search, fault=chosen)

    victim = Reasoner(kb, search=search)
    cold = Reasoner(kb, search=search)
    chaos_verdicts: List[Verdict] = []
    for kind, args in plan:
        verdict = run_probe(victim, kind, args, fault_budget(chosen, rng))
        chaos_verdicts.append(verdict)
        if verdict.is_unknown():
            result.unknowns += 1
        else:
            result.decided += 1

    for index, (kind, args) in enumerate(plan):
        cold_verdict = run_probe(cold, kind, args, None)
        if cold_verdict.is_unknown():  # pragma: no cover - unbudgeted
            result.mismatches.append(
                f"probe {index} ({kind}): cold run degraded without a budget"
            )
            continue
        # Soundness: a decided chaos verdict never flips the cold answer.
        chaos_verdict = chaos_verdicts[index]
        if not chaos_verdict.is_unknown() and bool(chaos_verdict) != bool(
            cold_verdict
        ):
            result.mismatches.append(
                f"probe {index} ({kind}): chaos decided {chaos_verdict} "
                f"but cold says {cold_verdict}"
            )
        # Reusability + cache integrity: the aborted reasoner, probed
        # again without a budget, matches the cold verdict exactly.
        warm_verdict = run_probe(victim, kind, args, None)
        if warm_verdict.is_unknown() or bool(warm_verdict) != bool(
            cold_verdict
        ):
            result.mismatches.append(
                f"probe {index} ({kind}): post-abort answer {warm_verdict} "
                f"!= cold {cold_verdict} (poisoned cache or broken rollback)"
            )
    return result


def run_chaos_suite(
    seeds: Iterable[int],
    searches: Sequence[str] = ("trail", "copying"),
    faults: Sequence[str] = FAULT_KINDS,
) -> ChaosReport:
    """The full matrix: every seed x search mode, each with a seeded fault.

    Every fault kind in ``faults`` is guaranteed coverage: case ``i``
    pins fault ``faults[i % len(faults)]`` so a short seed range still
    exercises all pathways deterministically.
    """
    report = ChaosReport()
    for index, seed in enumerate(seeds):
        fault = faults[index % len(faults)]
        for search in searches:
            report.cases.append(
                run_chaos_case(seed, search=search, fault=fault)
            )
    return report
