"""KB registry, probe execution, and the supervised worker process pool.

CPython reasoning is CPU-bound, so the service executes probes in
worker *processes*, sharded by KB name: every request for one KB lands
on the same worker, whose :class:`~repro.four_dl.reasoner4.Reasoner4`
(and therefore its :class:`~repro.dl.cache.QueryCache` and transform
memo) stays warm across requests — the whole point of a long-lived
daemon versus paying process startup and a cold parse per query.

Crash isolation is the contract, not an accident:

* a worker that dies (segfault, ``os._exit``, OOM-kill) is detected by
  the supervisor within one poll interval; its in-flight requests are
  answered with structured UNKNOWN (``reason=worker_crash``) instead of
  hanging, and the worker is restarted under exponential backoff;
* a *wedged* worker (in-flight request far past its deadline without
  the budget meter firing) is first cancelled cooperatively through a
  shared :class:`~repro.dl.budget.CancelToken` event, then killed and
  treated as a crash;
* repeated deaths trip a circuit breaker: after
  ``circuit_threshold`` consecutive crashes the shard fails fast
  (immediate UNKNOWN) until a long cool-down elapses, so a poison
  request cannot melt the pool with restart churn;
* requests that arrive while a shard is between incarnations wait in a
  bounded-by-deadline backlog and are dispatched after the restart —
  graceful degradation, never silent loss.

Because a worker's caches die with it, answers after a restart are
computed cold — which is exactly why the server-level chaos suite can
demand byte-identical bodies before and after a crash: the cache can
accelerate answers but never change them.

:class:`InlineExecutor` provides the same ``submit`` surface without
processes (probes run on the calling thread, per-KB locked) for
single-process deployments and tests; it refuses chaos probes since a
``debug_crash`` would take the whole server down with it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from ..dl.budget import Budget, CancelToken
from ..dl.errors import DegradationReason, ParseError, ReproError
from ..dl.individuals import Individual
from ..dl.parser import ConceptParser, parse_kb4
from ..four_dl.axioms4 import ConceptInclusion4, InclusionKind
from ..four_dl.reasoner4 import Reasoner4
from ..obs.export import spans_to_records
from ..obs.spans import Tracer, span as obs_span, tracing
from .protocol import CHAOS_KINDS, ProbeRequest, ProbeResponse

__all__ = [
    "KBRegistry",
    "execute_probe",
    "PendingProbe",
    "WorkerPool",
    "InlineExecutor",
]

#: How long a request without a client deadline may hold a worker
#: before the stall watchdog steps in.
DEFAULT_MAX_REQUEST_S = 60.0


class KBRegistry:
    """Named ontologies, parsed once and served warm.

    Maps KB names to file paths; each KB is parsed and wrapped in a
    :class:`~repro.four_dl.reasoner4.Reasoner4` on first use and kept
    for the registry's lifetime, so every later probe shares the same
    query cache and transform memo.  Probe execution is serialised
    per KB by a lock: the reasoner's tableau state is single-threaded
    even though its cache is now concurrency-safe.
    """

    def __init__(self, kb_paths: Dict[str, str]):
        self._paths = dict(kb_paths)
        self._lock = threading.Lock()
        self._loaded: Dict[str, Tuple[Reasoner4, threading.Lock]] = {}

    @property
    def names(self) -> Tuple[str, ...]:
        """The registered KB names, sorted."""
        return tuple(sorted(self._paths))

    def __contains__(self, name: str) -> bool:
        return name in self._paths

    def reasoner(self, name: str) -> Tuple[Reasoner4, threading.Lock]:
        """The warm reasoner and its execution lock for one KB.

        Raises ``KeyError`` for unregistered names (the server turns
        that into a 404 at admission, before any work is queued).
        """
        with self._lock:
            found = self._loaded.get(name)
            if found is not None:
                return found
            path = self._paths[name]
        with open(path) as handle:
            kb4 = parse_kb4(handle.read())
        entry = (Reasoner4(kb4), threading.Lock())
        with self._lock:
            return self._loaded.setdefault(name, entry)


def _parse_concept(reasoner: Reasoner4, text: str):
    parser = ConceptParser(
        role.name for role in reasoner.kb4.datatype_roles_in_signature()
    )
    return parser.parse(text)


def request_budget(
    request: ProbeRequest,
    deadline_at: Optional[float],
    cancel: Optional[CancelToken] = None,
) -> Optional[Budget]:
    """The resource envelope admission granted this request.

    ``deadline_at`` is the absolute monotonic instant the client's
    deadline expires (queue wait counts against it, which is the honest
    reading of "remaining deadline").  Returns ``None`` when the
    deadline has already passed — the caller must degrade to UNKNOWN
    without running anything, since :class:`~repro.dl.budget.Budget`
    correctly refuses non-positive deadlines.
    """
    deadline = None
    if deadline_at is not None:
        deadline = deadline_at - time.monotonic()
        if deadline <= 0:
            return None
    return Budget(
        deadline=deadline,
        max_nodes=request.max_nodes,
        max_branches=request.max_branches,
        cancel=cancel,
    )


def execute_probe(
    registry: KBRegistry,
    request: ProbeRequest,
    budget: Optional[Budget] = None,
    allow_chaos: bool = False,
) -> ProbeResponse:
    """Answer one probe against the registry (never raises for user input).

    Usage problems — unknown KB, unparsable concept expressions —
    return ``status="error"`` responses; resource exhaustion surfaces
    as the structured UNKNOWN the underlying verdict APIs produce.
    Chaos probes (``debug_crash`` / ``debug_stall``) are honoured only
    under ``allow_chaos`` and exist so the fault-injection suite can
    address a deterministic worker step from outside the process.
    """
    with obs_span("probe_execute") as span:
        span.set("kind", request.kind)
        span.set("kb", request.kb)
        if request.kind in CHAOS_KINDS:
            if not allow_chaos:
                return ProbeResponse.error(
                    f"probe kind {request.kind!r} requires a --chaos server"
                )
            if request.kind == "debug_crash":
                # Simulates a worker dying mid-request: no response is
                # ever written, the supervisor must notice the corpse.
                os._exit(43)
            time.sleep(request.stall_s)
            return ProbeResponse(
                status="ok", kind=request.kind, kb=request.kb, value=True
            )
        if request.kb not in registry:
            return ProbeResponse.error(f"unknown kb {request.kb!r}")
        try:
            reasoner, lock = registry.reasoner(request.kb)
        except (OSError, ParseError) as exc:
            return ProbeResponse.error(
                f"kb {request.kb!r} failed to load: {exc}"
            )
        try:
            with lock:
                response = _dispatch(reasoner, request, budget)
        except ReproError as exc:
            response = ProbeResponse.error(f"{type(exc).__name__}: {exc}")
        span.set("status", response.status)
        return response


def _dispatch(
    reasoner: Reasoner4, request: ProbeRequest, budget: Optional[Budget]
) -> ProbeResponse:
    if request.kind == "satisfiable":
        return ProbeResponse.from_verdict(
            request, reasoner.is_satisfiable_verdict(budget=budget)
        )
    if request.kind == "instance":
        concept = _parse_concept(reasoner, request.concept)
        verdict = reasoner.evidence_for_verdict(
            Individual(request.individual), concept, budget=budget
        )
        return ProbeResponse.from_verdict(request, verdict)
    if request.kind == "subsumption":
        sub = _parse_concept(reasoner, request.sub)
        sup = _parse_concept(reasoner, request.sup)
        inclusion = ConceptInclusion4(
            sub, sup, InclusionKind[request.inclusion.upper()]
        )
        verdict = reasoner.entails_verdict(inclusion, budget=budget)
        return ProbeResponse.from_verdict(request, verdict)
    if request.kind == "assertion_value":
        concept = _parse_concept(reasoner, request.concept)
        bounded = reasoner.assertion_value_bounded(
            Individual(request.individual), concept, budget=budget
        )
        return ProbeResponse.from_four_value(request, bounded)
    return ProbeResponse.error(f"unhandled probe kind {request.kind!r}")


# ---------------------------------------------------------------------------
# Worker process pool
# ---------------------------------------------------------------------------

def shard_of(kb: str, workers: int) -> int:
    """The stable shard index of a KB name (survives restarts)."""
    return zlib.crc32(kb.encode("utf-8")) % workers


class PendingProbe:
    """A one-shot future for an in-flight request (first resolve wins)."""

    __slots__ = (
        "_event",
        "_response",
        "deadline_at",
        "detail",
        "kill_at",
        "request_id",
    )

    def __init__(
        self,
        request_id: str,
        deadline_at: Optional[float],
        kill_at: float,
    ):
        self._event = threading.Event()
        self._response: Optional[ProbeResponse] = None
        self.request_id = request_id
        #: Absolute monotonic client deadline (None = no client deadline).
        self.deadline_at = deadline_at
        #: When the stall watchdog may escalate to killing the worker.
        self.kill_at = kill_at
        #: Execution metadata set at resolve time: which worker/
        #: incarnation answered, plus the shipped span forest
        #: (``{"trace": {...}, "worker": ..., "incarnation": ...}``).
        self.detail: Optional[Dict] = None

    def resolve(
        self, response: ProbeResponse, detail: Optional[Dict] = None
    ) -> bool:
        """Deliver the response; returns False if already resolved."""
        if self._event.is_set():
            return False
        self.detail = detail
        self._response = response
        self._event.set()
        return True

    @property
    def resolved(self) -> bool:
        """Whether a response has been delivered."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float]) -> Optional[ProbeResponse]:
        """Block for the response; ``None`` on timeout."""
        if self._event.wait(timeout):
            return self._response
        return None


class _Incarnation:
    """One living worker process plus its private channels."""

    def __init__(self, proc, task_queue, result_queue, cancel_event, number):
        self.proc = proc
        self.task_queue = task_queue
        self.result_queue = result_queue
        self.cancel_event = cancel_event
        #: 1-based incarnation counter within the shard (so a journal
        #: line can say "the third worker this shard has had").
        self.number = number
        self.pending: Dict[str, PendingProbe] = {}


class _Shard:
    """Supervisor-side state of one KB shard."""

    def __init__(self, index: int):
        self.index = index
        self.lock = threading.RLock()
        self.incarnation: Optional[_Incarnation] = None
        #: Requests awaiting a live worker (shard between incarnations):
        #: ``(pending, envelope, deadline_at, trace_id)``.
        self.backlog: List[
            Tuple[PendingProbe, dict, Optional[float], Optional[str]]
        ] = []
        self.consecutive_crashes = 0
        self.restarts = 0
        self.incarnations = 0
        self.next_restart_at = 0.0

    @property
    def worker_label(self) -> str:
        """The stable process label of this shard's workers."""
        return f"worker-{self.index}"


def _worker_main(
    kb_paths: Dict[str, str],
    allow_chaos: bool,
    task_queue,
    result_queue,
    cancel_event,
    process_label: str = "worker",
) -> None:
    """The worker loop: parse envelope, run probe, ship the wire response.

    Runs in the child process.  The cancel event is shared with the
    supervisor, which sets it to abort the *current* probe (cleared
    before each request); the probe's budget polls it through its
    :class:`~repro.dl.budget.CancelToken`, so cross-process
    cancellation rides the same cooperative pathway as local cancels.

    When the envelope carries a ``trace_id`` the probe runs under a
    per-request :class:`~repro.obs.spans.Tracer` labelled with this
    process, and the finished span forest ships back alongside the
    response (records + the tracer's perf_counter epoch, so the server
    can rebase the spans onto its own clock).
    """
    registry = KBRegistry(kb_paths)
    while True:
        envelope = task_queue.get()
        if envelope is None:
            return
        request_id, wire, deadline_at, trace_id = envelope
        cancel_event.clear()
        tracer: Optional[Tracer] = None
        if trace_id is not None:
            tracer = Tracer(trace_id=trace_id, process=process_label)
        try:
            request = ProbeRequest.from_wire(wire)
            budget = request_budget(
                request, deadline_at, cancel=CancelToken(event=cancel_event)
            )
            if deadline_at is not None and budget is None:
                response = ProbeResponse.unknown(
                    DegradationReason.DEADLINE,
                    "deadline exhausted while queued",
                    request,
                )
            else:
                with tracing(tracer):
                    response = execute_probe(
                        registry,
                        request,
                        budget=budget,
                        allow_chaos=allow_chaos,
                    )
        except Exception as exc:  # defensive: a worker must keep serving
            response = ProbeResponse.error(f"{type(exc).__name__}: {exc}")
        trace_blob = None
        if tracer is not None and tracer.roots:
            try:
                trace_blob = {
                    "epoch": tracer.epoch,
                    "spans": spans_to_records(tracer.roots),
                }
            except Exception:  # never fail a request over telemetry
                trace_blob = None
        result_queue.put((request_id, response.to_wire(), trace_blob))


class WorkerPool:
    """A supervised, KB-sharded pool of reasoning worker processes.

    ``workers`` processes are started eagerly (so ``/readyz`` reflects
    genuine capacity); each KB name maps to one shard by stable hash,
    giving every KB cache affinity with exactly one worker.  The
    supervisor (a monitor thread polling every ``poll_interval``
    seconds) implements the failure policy described in the module
    docstring; ``stall_grace`` is how far past a request's deadline the
    supervisor waits before cancelling and then killing a wedged
    worker, and ``circuit_cooldown`` is the fail-fast window after
    ``circuit_threshold`` consecutive crashes.
    """

    def __init__(
        self,
        kb_paths: Dict[str, str],
        workers: int = 2,
        allow_chaos: bool = False,
        restart_backoff: float = 0.1,
        backoff_cap: float = 5.0,
        circuit_threshold: int = 5,
        circuit_cooldown: float = 30.0,
        stall_grace: float = 1.0,
        poll_interval: float = 0.02,
        max_request_s: float = DEFAULT_MAX_REQUEST_S,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.kb_paths = dict(kb_paths)
        self.workers = workers
        self.allow_chaos = allow_chaos
        self.restart_backoff = restart_backoff
        self.backoff_cap = backoff_cap
        self.circuit_threshold = circuit_threshold
        self.circuit_cooldown = circuit_cooldown
        self.stall_grace = stall_grace
        self.poll_interval = poll_interval
        self.max_request_s = max_request_s
        self._context = multiprocessing.get_context("fork")
        self._shards = [_Shard(index) for index in range(workers)]
        self._ids = itertools.count(1)
        self._stopping = False
        self._started = False
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn every shard's first worker and the supervisor thread."""
        if self._started:
            return
        self._started = True
        for shard in self._shards:
            self._start_incarnation(shard)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-serve-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self, drain_timeout: float = 5.0) -> bool:
        """Drain in-flight work, then shut every worker down.

        Waits up to ``drain_timeout`` seconds for in-flight requests to
        finish; whatever remains is cancelled cooperatively, answered
        UNKNOWN (``cancelled``), and the workers are terminated.
        Returns ``True`` when the drain completed with nothing left
        in flight.
        """
        self._stopping = True
        deadline = time.monotonic() + max(drain_timeout, 0.0)
        drained = True
        while time.monotonic() < deadline:
            if self.inflight() == 0:
                break
            time.sleep(min(self.poll_interval, 0.05))
        else:
            drained = self.inflight() == 0
        for shard in self._shards:
            with shard.lock:
                incarnation = shard.incarnation
                shard.incarnation = None
                leftovers = []
                if incarnation is not None:
                    leftovers.extend(incarnation.pending.values())
                    incarnation.pending.clear()
                leftovers.extend(entry[0] for entry in shard.backlog)
                shard.backlog.clear()
            for pending in leftovers:
                drained = False
                pending.resolve(
                    ProbeResponse.unknown(
                        DegradationReason.CANCELLED, "server draining"
                    )
                )
            if incarnation is not None:
                incarnation.cancel_event.set()
                try:
                    incarnation.task_queue.put_nowait(None)
                except Exception:
                    pass
                incarnation.proc.join(timeout=1.0)
                if incarnation.proc.is_alive():
                    incarnation.proc.terminate()
                    incarnation.proc.join(timeout=1.0)
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        return drained

    # -- introspection ---------------------------------------------------
    def ready(self) -> bool:
        """Whether every shard has a live worker and a closed circuit."""
        if not self._started or self._stopping:
            return False
        for shard in self._shards:
            with shard.lock:
                incarnation = shard.incarnation
                if incarnation is None or not incarnation.proc.is_alive():
                    return False
                if shard.consecutive_crashes >= self.circuit_threshold:
                    return False
        return True

    def inflight(self) -> int:
        """Requests currently dispatched or backlogged across all shards."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                if shard.incarnation is not None:
                    total += len(shard.incarnation.pending)
                total += len(shard.backlog)
        return total

    def restarts_total(self) -> int:
        """Worker restarts since the pool started (first starts excluded)."""
        return sum(shard.restarts for shard in self._shards)

    def workers_alive(self) -> int:
        """How many shards currently have a living worker process."""
        alive = 0
        for shard in self._shards:
            with shard.lock:
                incarnation = shard.incarnation
                if incarnation is not None and incarnation.proc.is_alive():
                    alive += 1
        return alive

    def worker_pids(self) -> List[int]:
        """The PIDs of the living workers (the chaos/CI kill target)."""
        pids = []
        for shard in self._shards:
            with shard.lock:
                incarnation = shard.incarnation
                if incarnation is not None and incarnation.proc.is_alive():
                    pids.append(incarnation.proc.pid)
        return pids

    # -- submission ------------------------------------------------------
    def submit(
        self,
        request: ProbeRequest,
        deadline_at: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> PendingProbe:
        """Dispatch a request to its KB shard; returns its future.

        Never blocks and never raises for runtime conditions: a
        stopping pool, an open circuit, or a dead shard resolve the
        future immediately with the matching structured response.
        ``trace_id`` (when given) rides the task envelope and turns on
        per-request tracing inside the worker.
        """
        now = time.monotonic()
        kill_at = (
            deadline_at if deadline_at is not None else now + self.max_request_s
        ) + self.stall_grace
        pending = PendingProbe(
            request_id=f"r{next(self._ids)}",
            deadline_at=deadline_at,
            kill_at=kill_at,
        )
        if self._stopping or not self._started:
            pending.resolve(
                ProbeResponse.unknown(
                    DegradationReason.CANCELLED, "server draining"
                )
            )
            return pending
        shard = self._shards[shard_of(request.kb, self.workers)]
        envelope = request.to_wire()
        with shard.lock:
            if shard.consecutive_crashes >= self.circuit_threshold:
                pending.resolve(
                    ProbeResponse.unknown(
                        DegradationReason.WORKER_CRASH,
                        f"circuit open after {shard.consecutive_crashes} "
                        f"consecutive worker crashes; retrying at most every "
                        f"{self.circuit_cooldown:.0f}s",
                        request,
                    )
                )
                return pending
            incarnation = shard.incarnation
            if incarnation is None or not incarnation.proc.is_alive():
                shard.backlog.append((pending, envelope, deadline_at, trace_id))
                return pending
            incarnation.pending[pending.request_id] = pending
            incarnation.task_queue.put(
                (pending.request_id, envelope, deadline_at, trace_id)
            )
        return pending

    # -- supervision -------------------------------------------------
    def _start_incarnation(self, shard: _Shard) -> None:
        task_queue = self._context.Queue()
        result_queue = self._context.Queue()
        cancel_event = self._context.Event()
        proc = self._context.Process(
            target=_worker_main,
            args=(
                self.kb_paths,
                self.allow_chaos,
                task_queue,
                result_queue,
                cancel_event,
                shard.worker_label,
            ),
            name=f"repro-serve-worker-{shard.index}",
            daemon=True,
        )
        proc.start()
        with shard.lock:
            shard.incarnations += 1
            number = shard.incarnations
        incarnation = _Incarnation(
            proc, task_queue, result_queue, cancel_event, number
        )
        with shard.lock:
            shard.incarnation = incarnation
            backlog, shard.backlog = shard.backlog, []
            for pending, envelope, deadline_at, trace_id in backlog:
                incarnation.pending[pending.request_id] = pending
                task_queue.put(
                    (pending.request_id, envelope, deadline_at, trace_id)
                )
        collector = threading.Thread(
            target=self._collect,
            args=(shard, incarnation),
            name=f"repro-serve-collector-{shard.index}",
            daemon=True,
        )
        collector.start()

    def _collect(self, shard: _Shard, incarnation: _Incarnation) -> None:
        """Drain one incarnation's result queue until it dies or drains."""
        while True:
            try:
                item = incarnation.result_queue.get(timeout=0.1)
            except queue_module.Empty:
                if not incarnation.proc.is_alive():
                    return
                continue
            except (EOFError, OSError):
                return
            if item is None:
                return
            request_id, wire, trace_blob = item
            with shard.lock:
                pending = incarnation.pending.pop(request_id, None)
                shard.consecutive_crashes = 0
            if pending is not None:
                detail = {
                    "worker": shard.worker_label,
                    "incarnation": incarnation.number,
                    "trace": trace_blob,
                }
                try:
                    pending.resolve(ProbeResponse.from_wire(wire), detail)
                except Exception:
                    pending.resolve(
                        ProbeResponse.error("worker sent a malformed response"),
                        detail,
                    )

    def _fail_incarnation(self, shard: _Shard, now: float) -> None:
        """Handle one dead worker: fail in-flight, schedule the restart."""
        with shard.lock:
            incarnation = shard.incarnation
            shard.incarnation = None
            if incarnation is None:
                return
            victims = list(incarnation.pending.values())
            incarnation.pending.clear()
            shard.consecutive_crashes += 1
            crashes = shard.consecutive_crashes
            if crashes >= self.circuit_threshold:
                delay = self.circuit_cooldown
            else:
                delay = min(
                    self.backoff_cap,
                    self.restart_backoff * (2.0 ** (crashes - 1)),
                )
            shard.next_restart_at = now + delay
        incarnation.proc.join(timeout=0.5)
        exitcode = incarnation.proc.exitcode
        for pending in victims:
            pending.resolve(
                ProbeResponse.unknown(
                    DegradationReason.WORKER_CRASH,
                    f"worker for this KB shard died (exit {exitcode}) "
                    "before answering; it is being restarted",
                ),
                {
                    "worker": shard.worker_label,
                    "incarnation": incarnation.number,
                    "crashed": True,
                },
            )

    def _monitor_loop(self) -> None:
        while not self._stopping:
            now = time.monotonic()
            for shard in self._shards:
                with shard.lock:
                    incarnation = shard.incarnation
                    crashed = (
                        incarnation is not None
                        and not incarnation.proc.is_alive()
                    )
                if crashed:
                    self._fail_incarnation(shard, now)
                    continue
                if incarnation is None:
                    if now >= shard.next_restart_at and not self._stopping:
                        shard.restarts += 1
                        if shard.consecutive_crashes >= self.circuit_threshold:
                            # Half-open: one probe incarnation; a further
                            # crash re-opens the circuit for a full
                            # cool-down, a success closes it.
                            shard.consecutive_crashes = (
                                self.circuit_threshold - 1
                            )
                        self._start_incarnation(shard)
                    else:
                        self._expire_backlog(shard, now)
                    continue
                self._watch_stalls(shard, incarnation, now)
            time.sleep(self.poll_interval)

    def _expire_backlog(self, shard: _Shard, now: float) -> None:
        expired = []
        with shard.lock:
            keep = []
            for entry in shard.backlog:
                pending = entry[0]
                if pending.deadline_at is not None and now > pending.deadline_at:
                    expired.append(pending)
                else:
                    keep.append(entry)
            shard.backlog = keep
        for pending in expired:
            pending.resolve(
                ProbeResponse.unknown(
                    DegradationReason.DEADLINE,
                    "deadline exhausted while waiting for a worker restart",
                )
            )

    def _watch_stalls(
        self, shard: _Shard, incarnation: _Incarnation, now: float
    ) -> None:
        """Escalate wedged requests: cooperative cancel, then kill."""
        with shard.lock:
            if incarnation is not shard.incarnation:
                return
            stalled = [
                pending
                for pending in incarnation.pending.values()
                if now > pending.kill_at
            ]
            hard_stalled = any(
                now > pending.kill_at + self.stall_grace for pending in stalled
            )
        if not stalled:
            return
        # First escalation: ask nicely through the shared cancel event —
        # a healthy-but-slow worker aborts with UNKNOWN(cancelled).
        incarnation.cancel_event.set()
        if hard_stalled:
            # Second escalation: the worker ignored cancellation for a
            # full extra grace period; treat it as wedged and kill it.
            # The crash pathway answers its in-flight requests.
            incarnation.proc.kill()


class InlineExecutor:
    """The pool surface without processes: probes run on the caller.

    Used by ``repro serve --workers 0`` and by tests that want the
    admission/HTTP layers without fork overhead.  There is no crash
    isolation here — chaos probes are refused rather than honoured.
    """

    def __init__(self, kb_paths: Dict[str, str]):
        self.registry = KBRegistry(kb_paths)
        self._stopping = False

    def start(self) -> None:
        """Nothing to spawn; present for interface parity."""

    def stop(self, drain_timeout: float = 5.0) -> bool:
        """Mark the executor stopped (in-flight probes finish inline)."""
        self._stopping = True
        return True

    def ready(self) -> bool:
        """Inline execution is ready as soon as the server is up."""
        return not self._stopping

    def inflight(self) -> int:
        """Inline probes resolve synchronously; nothing is ever queued."""
        return 0

    def restarts_total(self) -> int:
        """No workers, no restarts."""
        return 0

    def workers_alive(self) -> int:
        """No worker processes exist in inline mode."""
        return 0

    def worker_pids(self) -> List[int]:
        """No worker processes exist in inline mode."""
        return []

    def submit(
        self,
        request: ProbeRequest,
        deadline_at: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> PendingProbe:
        """Execute the probe synchronously; the future is born resolved.

        ``trace_id`` is accepted for interface parity but unused: the
        probe runs on the caller's thread, so its spans land directly
        inside the server's per-request tracer — no shipping needed.
        """
        pending = PendingProbe(
            request_id="inline", deadline_at=deadline_at, kill_at=0.0
        )
        detail = {"worker": "inline", "incarnation": 0}
        if self._stopping:
            pending.resolve(
                ProbeResponse.unknown(
                    DegradationReason.CANCELLED, "server draining"
                ),
                detail,
            )
            return pending
        if request.kind in CHAOS_KINDS:
            pending.resolve(
                ProbeResponse.error(
                    "chaos probes need a worker pool (--workers >= 1)"
                ),
                detail,
            )
            return pending
        budget = request_budget(request, deadline_at, cancel=CancelToken())
        if deadline_at is not None and budget is None:
            pending.resolve(
                ProbeResponse.unknown(
                    DegradationReason.DEADLINE,
                    "deadline exhausted while queued",
                    request,
                ),
                detail,
            )
            return pending
        pending.resolve(
            execute_probe(self.registry, request, budget=budget), detail
        )
        return pending
