"""The HTTP front of the reasoning service: admission, degradation, drain.

A thin, stdlib-only layer (:class:`http.server.ThreadingHTTPServer`)
over the worker pool.  Its job is to make every operational failure an
*explicit, bounded* response — the service-level reading of the paper's
paraconsistent stance that surprising inputs degrade answers instead of
destroying them:

* **Admission control.**  A counting semaphore bounds how many requests
  may be queued or running at once; when it is full the server answers
  ``429`` with a ``Retry-After`` hint *immediately* rather than letting
  latency grow without bound.  The client's ``deadline_ms`` is converted
  into a wall-clock :class:`~repro.dl.budget.Budget` at admission — a
  non-positive remaining deadline short-circuits to a structured UNKNOWN
  (``reason=deadline``, HTTP 504) before any reasoning starts, because
  :class:`~repro.dl.budget.Budget` itself refuses dead-on-arrival
  deadlines.
* **Degradation mapping.**  Decided verdicts are ``200``; UNKNOWN maps
  by reason — budget exhaustion (deadline / nodes / branches) to
  ``504``, ``worker_crash`` and drain cancellation to ``503`` (the
  condition is the server's, not the question's); usage errors are
  ``400``/``404``.  Response *bodies* are deterministic (sorted-key
  JSON, no timestamps or ids) so the chaos suite can byte-compare a
  recovered server against a cold one; the client's ``request_id`` is
  echoed in the ``X-Request-Id`` header only.
* **Graceful shutdown.**  SIGTERM (wired up by the CLI) flips the
  server into draining: ``/readyz`` goes 503 so load balancers stop
  sending traffic, new probes are rejected, in-flight requests get up
  to ``drain_timeout`` seconds to finish, stragglers are cancelled
  cooperatively and answered UNKNOWN, and only then does the listener
  close.

``/healthz`` answers liveness (the process serves HTTP), ``/readyz``
answers readiness (every worker shard alive, circuit closed, not
draining), ``/metrics`` renders the ``repro_serve_*`` series documented
in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..dl.errors import DegradationReason
from ..obs.export import spans_to_jsonl
from ..obs.metrics import Histogram
from ..obs.spans import Span, Tracer, span as obs_span, tracing
from ..obs.trace import graft_spans, new_trace_id, sanitize_trace_id
from .journal import JournalEntry, RequestJournal, TraceStore, derive_execution
from .pool import InlineExecutor, WorkerPool
from .protocol import ProbeRequest, ProbeResponse, ProtocolError

__all__ = ["ServeMetrics", "ReproServer"]

#: UNKNOWN reasons that mean "the server was in trouble, not the
#: question": mapped to 503 (retryable against a healthy replica)
#: instead of 504 (the question itself blew its budget).
_SERVER_SIDE_REASONS = frozenset(
    {DegradationReason.WORKER_CRASH.value, DegradationReason.CANCELLED.value}
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    return repr(float(value))


class ServeMetrics:
    """Thread-safe counters for the service plane.

    Rendered as the ``repro_serve_*`` Prometheus series; the worker
    restart count lives on the pool (the supervisor owns that truth)
    and is merged in at render time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_total: Dict[str, int] = {}
        self.rejections_total: Dict[str, int] = {}
        self.unknown_total: Dict[str, int] = {}
        self.cache_hits_total: Dict[str, int] = {}
        self.cache_misses_total: Dict[str, int] = {}
        self.inflight = 0
        self.request_seconds = Histogram("repro_serve_request_seconds")

    def admitted(self) -> None:
        """One request passed admission control (in flight from now)."""
        with self._lock:
            self.inflight += 1

    def rejected(self, why: str) -> None:
        """One request refused at admission (``queue_full``/``draining``)."""
        with self._lock:
            self.rejections_total[why] = self.rejections_total.get(why, 0) + 1

    def finished(self, response: ProbeResponse, seconds: float) -> None:
        """One admitted request completed (any status)."""
        with self._lock:
            self.inflight -= 1
            status = response.status
            self.requests_total[status] = self.requests_total.get(status, 0) + 1
            if status == "unknown" and response.reason:
                self.unknown_total[response.reason] = (
                    self.unknown_total.get(response.reason, 0) + 1
                )
            self.request_seconds.observe(seconds)

    def cache_result(self, kb: Optional[str], hit: Optional[bool]) -> None:
        """Count one per-KB query-cache probe outcome (``None`` = unseen).

        Fed from the request's span forest (the ``cache_probe`` span's
        ``hit`` attribute), so the series exists only while tracing is
        enabled — the per-KB hit *rate* is
        ``hits / (hits + misses)`` per kb label.
        """
        if kb is None or hit is None:
            return
        with self._lock:
            target = self.cache_hits_total if hit else self.cache_misses_total
            target[kb] = target.get(kb, 0) + 1

    def render(
        self,
        queue_capacity: int,
        queue_free: int,
        worker_restarts: int,
        workers_alive: int,
        trace_store_traces: int = 0,
        journal_entries: int = 0,
        journal_lines: int = 0,
        journal_captured: int = 0,
    ) -> str:
        """The Prometheus text exposition of the service plane."""
        with self._lock:
            lines = []

            def counter(name: str, help_text: str, by_label) -> None:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} counter")
                for (label, key), count in by_label:
                    lines.append(f'{name}{{{label}="{key}"}} {count}')

            def gauge(name: str, help_text: str, value: float) -> None:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(value)}")

            gauge(
                "repro_serve_queue_depth",
                "Admitted requests currently queued or running.",
                queue_capacity - queue_free,
            )
            gauge(
                "repro_serve_inflight",
                "Requests currently being answered.",
                self.inflight,
            )
            gauge(
                "repro_serve_workers_alive",
                "Worker shards with a living process.",
                workers_alive,
            )
            lines.append(
                "# HELP repro_serve_worker_restarts_total "
                "Worker processes restarted after a crash or kill."
            )
            lines.append("# TYPE repro_serve_worker_restarts_total counter")
            lines.append(
                f"repro_serve_worker_restarts_total {worker_restarts}"
            )
            counter(
                "repro_serve_requests_total",
                "Completed requests by response status.",
                sorted(
                    (("status", key), count)
                    for key, count in self.requests_total.items()
                ),
            )
            counter(
                "repro_serve_admission_rejections_total",
                "Requests refused at admission control.",
                sorted(
                    (("why", key), count)
                    for key, count in self.rejections_total.items()
                ),
            )
            counter(
                "repro_serve_unknown_total",
                "Structured UNKNOWN answers by degradation reason.",
                sorted(
                    (("reason", key), count)
                    for key, count in self.unknown_total.items()
                ),
            )
            counter(
                "repro_serve_cache_hits_total",
                "Query-cache hits by KB (derived from request traces).",
                sorted(
                    (("kb", key), count)
                    for key, count in self.cache_hits_total.items()
                ),
            )
            counter(
                "repro_serve_cache_misses_total",
                "Query-cache misses by KB (derived from request traces).",
                sorted(
                    (("kb", key), count)
                    for key, count in self.cache_misses_total.items()
                ),
            )
            gauge(
                "repro_serve_trace_store_traces",
                "Reassembled traces held by the in-memory trace store.",
                trace_store_traces,
            )
            gauge(
                "repro_serve_journal_entries",
                "Request-journal entries currently in the ring.",
                journal_entries,
            )
            lines.append(
                "# HELP repro_serve_journal_lines_total "
                "Requests journalled since startup."
            )
            lines.append("# TYPE repro_serve_journal_lines_total counter")
            lines.append(f"repro_serve_journal_lines_total {journal_lines}")
            lines.append(
                "# HELP repro_serve_journal_captured_total "
                "Slow-or-UNKNOWN traces captured to disk."
            )
            lines.append("# TYPE repro_serve_journal_captured_total counter")
            lines.append(
                f"repro_serve_journal_captured_total {journal_captured}"
            )
            name = "repro_serve_request_seconds"
            lines.append(
                f"# HELP {name} Wall-clock latency of admitted requests."
            )
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in self.request_seconds.cumulative_buckets():
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(
                f"{name}_sum {_format_value(self.request_seconds.sum)}"
            )
            lines.append(f"{name}_count {self.request_seconds.count}")
            return "\n".join(lines) + "\n"


class ReproServer:
    """The long-lived reasoning daemon (HTTP + admission + worker pool).

    ``kb_paths`` maps KB names to ontology files; they are loaded lazily
    inside the workers and stay warm for the server's lifetime.
    ``workers=0`` selects inline execution (no crash isolation — for
    tests and single-user setups); ``chaos=True`` arms the
    ``debug_crash``/``debug_stall`` probe kinds used by the
    fault-injection suite and must never be set in production.

    ``max_queue`` is the admission bound: requests admitted but not yet
    answered.  ``default_deadline_ms`` applies when a client sends no
    deadline, so no request can hold a slot forever.

    **Tracing and the journal.**  With ``tracing_enabled`` (the
    default) every request gets a per-request tracer rooted at a
    ``serve_request`` span carrying the request's trace id (minted at
    admission unless the client sent ``X-Trace-Id``); worker-side span
    forests ship back over the result queue and are grafted under the
    server's ``dispatch`` span, and the reassembled tree is kept in a
    bounded :class:`~repro.serve.journal.TraceStore` behind
    ``GET /trace/<id>``.  Every request — including rejections and
    errors — is journalled (:class:`~repro.serve.journal.RequestJournal`);
    ``journal_path`` appends the records to a JSONL file, and
    ``capture_dir`` + ``slow_trace_ms`` arm the slow-or-UNKNOWN trace
    capture policy.  Response *bodies* stay byte-deterministic — ids
    travel in headers only.
    """

    def __init__(
        self,
        kb_paths: Dict[str, str],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue: int = 16,
        default_deadline_ms: Optional[float] = 30_000.0,
        retry_after: float = 1.0,
        drain_timeout: float = 5.0,
        chaos: bool = False,
        quiet: bool = True,
        tracing_enabled: bool = True,
        trace_capacity: int = 256,
        journal_capacity: int = 1024,
        journal_path: Optional[str] = None,
        capture_dir: Optional[str] = None,
        slow_trace_ms: float = 1000.0,
        **pool_options,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue!r}")
        self.kb_paths = dict(kb_paths)
        self.default_deadline_ms = default_deadline_ms
        self.retry_after = retry_after
        self.drain_timeout = drain_timeout
        self.quiet = quiet
        self.metrics = ServeMetrics()
        self.tracing_enabled = tracing_enabled
        self.traces = TraceStore(capacity=trace_capacity)
        self.journal = RequestJournal(
            capacity=journal_capacity,
            sink_path=journal_path,
            capture_dir=capture_dir,
            slow_ms=slow_trace_ms,
        )
        self.max_queue = max_queue
        self._slots = threading.Semaphore(max_queue)
        self._slots_free = max_queue
        self._slots_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Event()
        if workers >= 1:
            self.pool = WorkerPool(
                self.kb_paths, workers=workers, allow_chaos=chaos, **pool_options
            )
        else:
            self.pool = InlineExecutor(self.kb_paths)
        self._httpd = _ServeHTTPServer((host, port), _Handler, app=self)
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (useful with ``port=0``)."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Start the workers and the HTTP listener (returns immediately)."""
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Block until the server drains and shuts down (CLI entry)."""
        if self._serve_thread is None:
            self.start()
        self._drained.wait()

    def shutdown_gracefully(self, drain_timeout: Optional[float] = None) -> bool:
        """Drain and stop: the SIGTERM pathway.

        Flips into draining (readiness 503, new probes rejected), waits
        up to the drain deadline for in-flight requests, cancels and
        degrades the rest, stops the pool and the listener.  Idempotent;
        returns ``True`` when everything in flight finished in time.
        """
        if self._draining.is_set():
            self._drained.wait()
            return True
        self._draining.set()
        timeout = self.drain_timeout if drain_timeout is None else drain_timeout
        deadline = time.monotonic() + max(timeout, 0.0)
        while time.monotonic() < deadline:
            with self._slots_lock:
                quiet = self._slots_free == self.max_queue
            if quiet:
                break
            time.sleep(0.02)
        with self._slots_lock:
            drained = self._slots_free == self.max_queue
        remaining = max(deadline - time.monotonic(), 0.1)
        drained = self.pool.stop(drain_timeout=remaining) and drained
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=2.0)
        self.journal.close()
        self._drained.set()
        return drained

    def close(self) -> None:
        """Tear down without draining (tests and emergency exits)."""
        self.shutdown_gracefully(drain_timeout=0.0)

    # -- request plane -----------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether SIGTERM/drain has been initiated."""
        return self._draining.is_set()

    def ready(self) -> bool:
        """Readiness: workers up, circuit closed, not draining."""
        return not self.draining and self.pool.ready()

    def queue_free(self) -> int:
        """Unclaimed admission slots right now."""
        with self._slots_lock:
            return self._slots_free

    def _try_admit(self) -> bool:
        if not self._slots.acquire(blocking=False):
            return False
        with self._slots_lock:
            self._slots_free -= 1
        return True

    def _release(self) -> None:
        with self._slots_lock:
            self._slots_free += 1
        self._slots.release()

    def handle_probe(
        self,
        body: str,
        trace_id: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[int, ProbeResponse, str]:
        """Answer one ``POST /probe`` body: ``(status, response, trace_id)``.

        Pure request-plane logic, independent of the socket layer so
        tests can drive it directly.  Never raises for client input.
        A usable client-supplied ``trace_id`` is honoured, anything
        else replaced with a freshly minted id; the request runs under
        a per-request tracer (when tracing is enabled), the reassembled
        span forest lands in the trace store, and a journal line is
        written for every outcome — including rejections and errors.
        """
        trace_id = sanitize_trace_id(trace_id) or new_trace_id()
        started = time.monotonic()
        detail: Dict[str, object] = {}
        if not self.tracing_enabled:
            status, response = self._handle_request(body, detail)
            roots = []
        else:
            tracer = Tracer(trace_id=trace_id, process="server")
            with tracing(tracer):
                with obs_span("serve_request") as root:
                    status, response = self._handle_request(body, detail)
                    root.set("status", response.status)
                    if response.kind is not None:
                        root.set("kind", response.kind)
                    if response.kb is not None:
                        root.set("kb", response.kb)
            roots = tracer.roots
            trace_blob = detail.get("trace")
            target = detail.get("dispatch_span")
            if trace_blob and isinstance(target, Span):
                try:
                    graft_spans(target, trace_blob, tracer.epoch)
                except (ValueError, TypeError):
                    pass  # a malformed trace never fails the request
            if roots:
                self.traces.put(trace_id, roots)
        self._journal_request(
            trace_id, request_id, started, response, detail, roots
        )
        return status, response, trace_id

    def _journal_request(
        self,
        trace_id: str,
        request_id: Optional[str],
        started: float,
        response: ProbeResponse,
        detail: Dict[str, object],
        roots,
    ) -> None:
        duration_ms = (time.monotonic() - started) * 1000.0
        request = detail.get("request")
        if request_id is None and isinstance(request, ProbeRequest):
            request_id = request.request_id
        cache_hit, engine = derive_execution(roots)
        if detail.get("admitted") and response.kb is not None:
            self.metrics.cache_result(response.kb, cache_hit)
        self.journal.record(
            JournalEntry(
                trace_id=trace_id,
                status=response.status,
                duration_ms=duration_ms,
                kind=response.kind,
                kb=response.kb,
                reason=response.reason,
                request_id=request_id,
                cache_hit=cache_hit,
                engine=engine,
                worker=detail.get("worker"),
                incarnation=detail.get("incarnation"),
            ),
            roots=roots or None,
        )

    def _handle_request(
        self, body: str, detail: Dict[str, object]
    ) -> Tuple[int, ProbeResponse]:
        with obs_span("admission") as adm:
            try:
                request = ProbeRequest.from_json(body)
            except ProtocolError as exc:
                adm.set("outcome", "bad_request")
                return 400, ProbeResponse.error(str(exc))
            detail["request"] = request
            adm.set("kind", request.kind)
            adm.set("kb", request.kb)
            if request.kind not in ("debug_crash", "debug_stall") and (
                request.kb not in self.kb_paths
            ):
                adm.set("outcome", "unknown_kb")
                return 404, ProbeResponse.error(
                    f"unknown kb {request.kb!r}; serving "
                    f"{sorted(self.kb_paths)}"
                )
            if self.draining:
                adm.set("outcome", "draining")
                self.metrics.rejected("draining")
                return 503, ProbeResponse.rejected(
                    self.retry_after, "server is draining"
                )
            if not self._try_admit():
                adm.set("outcome", "queue_full")
                self.metrics.rejected("queue_full")
                return 429, ProbeResponse.rejected(
                    self.retry_after,
                    f"admission queue full ({self.max_queue} slots)",
                )
            adm.set("outcome", "admitted")
        detail["admitted"] = True
        self.metrics.admitted()
        started = time.monotonic()
        status, response = 500, ProbeResponse.error("internal server error")
        try:
            status, response = self._run_admitted(request, started, detail)
        finally:
            self._release()
            self.metrics.finished(response, time.monotonic() - started)
        return status, response

    def _run_admitted(
        self, request: ProbeRequest, started: float, detail: Dict[str, object]
    ) -> Tuple[int, ProbeResponse]:
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            # Already over deadline at admission: Budget would refuse a
            # non-positive deadline, so degrade before building one.
            return 504, ProbeResponse.unknown(
                DegradationReason.DEADLINE,
                f"deadline_ms={deadline_ms!r} is already exhausted "
                "at admission",
                request,
            )
        deadline_at = (
            started + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        with obs_span("dispatch") as dsp:
            trace_id = None
            if isinstance(dsp, Span):
                detail["dispatch_span"] = dsp
                trace_id = dsp.trace_id
            pending = self.pool.submit(
                request, deadline_at=deadline_at, trace_id=trace_id
            )
            wait = None
            if deadline_at is not None:
                # The watchdog escalates a wedged worker at
                # deadline+grace; give it room to do so before the HTTP
                # layer gives up.
                wait = (deadline_at - time.monotonic()) + 2.0 * getattr(
                    self.pool, "stall_grace", 1.0
                ) + 0.5
            response = pending.wait(wait)
            if response is None:
                response = ProbeResponse.unknown(
                    DegradationReason.DEADLINE,
                    "request exceeded its deadline in flight",
                    request,
                )
            pool_detail = pending.detail
            if pool_detail:
                detail.update(pool_detail)
                if pool_detail.get("worker") is not None:
                    dsp.set("worker", pool_detail["worker"])
                if pool_detail.get("incarnation") is not None:
                    dsp.set("incarnation", pool_detail["incarnation"])
                if pool_detail.get("crashed"):
                    dsp.set("crashed", True)
        return self._http_status(response), response

    @staticmethod
    def _http_status(response: ProbeResponse) -> int:
        if response.status == "ok":
            return 200
        if response.status == "unknown":
            if response.reason in _SERVER_SIDE_REASONS:
                return 503
            return 504
        if response.status == "rejected":
            return 429
        return 400


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, app: ReproServer):
        self.app = app
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    @property
    def app(self) -> ReproServer:
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.app.quiet:
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------
    def _send(
        self,
        status: int,
        body: str,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = body.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response; the answer (and any
            # cache warmth it produced) is simply dropped.  Nothing to
            # clean up: admission slots are released by the caller.
            self.close_connection = True

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        app = self.app
        if self.path == "/healthz":
            self._send(200, json.dumps({"status": "alive"}, sort_keys=True))
        elif self.path == "/readyz":
            if app.ready():
                self._send(200, json.dumps({"status": "ready"}, sort_keys=True))
            else:
                self._send(
                    503,
                    json.dumps(
                        {
                            "status": "unready",
                            "draining": app.draining,
                        },
                        sort_keys=True,
                    ),
                    headers={"Retry-After": str(app.retry_after)},
                )
        elif self.path == "/metrics":
            body = app.metrics.render(
                queue_capacity=app.max_queue,
                queue_free=app.queue_free(),
                worker_restarts=app.pool.restarts_total(),
                workers_alive=app.pool.workers_alive(),
                trace_store_traces=len(app.traces),
                journal_entries=len(app.journal),
                journal_lines=app.journal.lines_total,
                journal_captured=app.journal.captured_total,
            )
            self._send(200, body, content_type="text/plain; version=0.0.4")
        elif self.path == "/kbs":
            self._send(
                200, json.dumps({"kbs": sorted(app.kb_paths)}, sort_keys=True)
            )
        elif self.path == "/traces":
            self._send(
                200, json.dumps({"traces": app.traces.ids()}, sort_keys=True)
            )
        elif self.path.startswith("/trace/"):
            trace_id = self.path[len("/trace/"):]
            roots = app.traces.get(trace_id)
            if roots is None:
                self._send(
                    404,
                    ProbeResponse.error(
                        f"no stored trace {trace_id!r} (expired or never "
                        "recorded; the store is bounded)"
                    ).to_json(),
                )
            else:
                self._send(
                    200,
                    spans_to_jsonl(roots),
                    content_type="application/x-ndjson",
                )
        elif self.path == "/journal":
            body = "".join(
                json.dumps(entry.to_record(), sort_keys=True) + "\n"
                for entry in self.app.journal.recent()
            )
            self._send(200, body, content_type="application/x-ndjson")
        else:
            self._send(
                404,
                ProbeResponse.error(f"no such endpoint {self.path!r}").to_json(),
            )

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/probe":
            self._send(
                404,
                ProbeResponse.error(f"no such endpoint {self.path!r}").to_json(),
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length).decode("utf-8")
        except (ValueError, UnicodeDecodeError, ConnectionError) as exc:
            self._send(
                400, ProbeResponse.error(f"unreadable body: {exc}").to_json()
            )
            return
        request_id = self.headers.get("X-Request-Id")
        if request_id is None:
            try:
                record = json.loads(body)
                if isinstance(record, dict):
                    request_id = record.get("request_id")
            except (json.JSONDecodeError, ValueError):
                request_id = None
        status, response, trace_id = self.app.handle_probe(
            body,
            trace_id=self.headers.get("X-Trace-Id"),
            request_id=request_id if isinstance(request_id, str) else None,
        )
        headers: Dict[str, str] = {"X-Trace-Id": trace_id}
        if isinstance(request_id, str) and request_id:
            headers["X-Request-Id"] = request_id
        if status in (429, 503):
            headers["Retry-After"] = str(self.app.retry_after)
        self._send(status, response.to_json(), headers=headers)
