"""A stdlib HTTP client for the reasoning service, with careful retries.

:class:`ReproClient` wraps :mod:`urllib.request` with the failure
policy a degradation-aware client needs:

* **Idempotence-gated retries.**  Only pure reads
  (:data:`~repro.serve.protocol.IDEMPOTENT_KINDS`) are re-sent; a chaos
  probe or any future mutating kind is attempted exactly once, because
  "the connection died" does not mean "the server did nothing".
* **Retry on transport and backpressure only.**  Connection errors,
  ``429`` (queue full) and ``503`` (draining, worker crash, not ready)
  are retryable conditions — the server explicitly said *try again*.
  ``504`` (the probe blew its own budget) and ``400``/``404`` (usage)
  are answers, not failures, and are returned immediately: retrying a
  deadline-shaped UNKNOWN would just spend the deadline again.
* **Backoff with jitter.**  Exponential base backoff multiplied by a
  random factor in ``[0.5, 1.5)``, so a thundering herd of clients
  hitting one recovering server de-synchronises.  The RNG is
  injectable (``rng=random.Random(0)``) for deterministic tests, as is
  the sleep function.
* **Deadline discipline.**  A per-call ``deadline_ms`` rides the
  request body (the server converts it to a
  :class:`~repro.dl.budget.Budget`) and also bounds the socket timeout,
  so a wedged network cannot outlive the reasoning deadline.
* **Trace context.**  Every probe carries an ``X-Request-Id`` (minted
  when the caller didn't supply ``request_id``) and a fresh
  ``X-Trace-Id``; both are minted *once per call*, so every retry of
  one logical probe shares the same ids and the server journal can
  stitch the attempts together.  The ids the server echoed come back
  on the response (:attr:`ProbeResponse.request_id` /
  :attr:`ProbeResponse.trace_id` — header-derived, never part of the
  deterministic body), and :meth:`ReproClient.trace` fetches the
  reassembled span forest for a trace id.

The convenience probes (:meth:`ReproClient.satisfiable`,
:meth:`ReproClient.instance`, :meth:`ReproClient.subsumption`,
:meth:`ReproClient.assertion_value`) return the same
:class:`~repro.dl.budget.Verdict` /
:class:`~repro.fourvalued.truth.FourValue` shapes the library's local
APIs produce, so switching between embedded and remote reasoning is a
one-line change.
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import time
import urllib.error
import urllib.request
from typing import List, Optional

from ..dl.budget import Verdict
from ..dl.errors import ReproError
from ..fourvalued.truth import FourValue
from ..obs.export import read_spans_jsonl
from ..obs.spans import Span
from ..obs.trace import new_trace_id
from .protocol import ProbeRequest, ProbeResponse, ProtocolError

__all__ = ["ServiceUnavailable", "ReproClient"]

#: HTTP statuses that mean "try again later", never "wrong question".
_RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceUnavailable(ReproError):
    """The service could not be reached (or stayed backpressured)
    within the client's retry budget."""


class ReproClient:
    """A connection to one ``repro serve`` endpoint.

    ``retries`` counts *re*-sends (0 disables retrying); ``backoff`` is
    the base delay before the first retry, doubling each attempt and
    multiplied by jitter in ``[0.5, 1.5)``.  ``timeout_s`` is the
    per-attempt socket timeout used when a request carries no deadline.
    """

    def __init__(
        self,
        base_url: str,
        retries: int = 3,
        backoff: float = 0.1,
        timeout_s: float = 30.0,
        rng: Optional[random.Random] = None,
        sleep=time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.backoff = backoff
        self.timeout_s = timeout_s
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    # -- transport -----------------------------------------------------
    def _attempt(
        self, request: ProbeRequest, trace_id: Optional[str] = None
    ) -> ProbeResponse:
        timeout = self.timeout_s
        if request.deadline_ms is not None:
            # The socket must outlive the reasoning deadline slightly so
            # the structured UNKNOWN can still be delivered.
            timeout = max(request.deadline_ms / 1000.0 * 1.5, 0.05)
        body = json.dumps(request.to_wire(), sort_keys=True).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if request.request_id:
            headers["X-Request-Id"] = request.request_id
        if trace_id:
            headers["X-Trace-Id"] = trace_id
        http_request = urllib.request.Request(
            f"{self.base_url}/probe",
            data=body,
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(http_request, timeout=timeout) as raw:
                return self._with_ids(
                    ProbeResponse.from_json(raw.read().decode("utf-8")),
                    raw.headers,
                )
        except urllib.error.HTTPError as error:
            # Structured non-2xx answers still carry a protocol body.
            payload = error.read().decode("utf-8", errors="replace")
            try:
                return self._with_ids(
                    ProbeResponse.from_json(payload), error.headers
                )
            except ProtocolError:
                raise ServiceUnavailable(
                    f"HTTP {error.code} with non-protocol body: "
                    f"{payload[:200]!r}"
                ) from None

    @staticmethod
    def _with_ids(response: ProbeResponse, headers) -> ProbeResponse:
        """The response annotated with the server-echoed header ids."""
        request_id = headers.get("X-Request-Id") if headers else None
        trace_id = headers.get("X-Trace-Id") if headers else None
        if request_id is None and trace_id is None:
            return response
        return dataclasses.replace(
            response, request_id=request_id, trace_id=trace_id
        )

    def probe(self, request: ProbeRequest) -> ProbeResponse:
        """Send one probe, retrying per the policy in the module docstring.

        Raises :class:`ServiceUnavailable` when the transport keeps
        failing (or the server keeps shedding load) past the retry
        budget, and immediately for non-idempotent requests.  A missing
        ``request_id`` is minted here, and a trace id always is — both
        once per call, so every retry shares the same correlation ids.
        """
        if request.request_id is None:
            request = dataclasses.replace(
                request, request_id=new_trace_id()[:16]
            )
        trace_id = new_trace_id()
        attempts = (self.retries + 1) if request.idempotent else 1
        last_error: Optional[str] = None
        for attempt in range(attempts):
            if attempt:
                jitter = 0.5 + self._rng.random()
                self._sleep(self.backoff * (2.0 ** (attempt - 1)) * jitter)
            try:
                response = self._attempt(request, trace_id=trace_id)
            except (urllib.error.URLError, socket.timeout, ConnectionError) as exc:
                last_error = f"transport error: {exc}"
                continue
            if (
                response.status == "rejected"
                or (
                    response.status == "unknown"
                    and response.reason == "worker_crash"
                )
            ) and attempt + 1 < attempts:
                last_error = f"backpressure: {response.message}"
                continue
            return response
        raise ServiceUnavailable(
            f"no answer after {attempts} attempt(s); last: {last_error}"
        )

    # -- convenience probes ----------------------------------------------
    def satisfiable(
        self, kb: str, deadline_ms: Optional[float] = None, **options
    ) -> Verdict:
        """Four-valued satisfiability of a served KB, as a Verdict."""
        return self.probe(
            ProbeRequest(
                kind="satisfiable", kb=kb, deadline_ms=deadline_ms, **options
            )
        ).verdict

    def instance(
        self,
        kb: str,
        individual: str,
        concept: str,
        deadline_ms: Optional[float] = None,
        **options,
    ) -> Verdict:
        """Positive-evidence instance check ``C(a)``, as a Verdict."""
        return self.probe(
            ProbeRequest(
                kind="instance",
                kb=kb,
                individual=individual,
                concept=concept,
                deadline_ms=deadline_ms,
                **options,
            )
        ).verdict

    def subsumption(
        self,
        kb: str,
        sub: str,
        sup: str,
        inclusion: str = "internal",
        deadline_ms: Optional[float] = None,
        **options,
    ) -> Verdict:
        """Four-valued subsumption between concept expressions."""
        return self.probe(
            ProbeRequest(
                kind="subsumption",
                kb=kb,
                sub=sub,
                sup=sup,
                inclusion=inclusion,
                deadline_ms=deadline_ms,
                **options,
            )
        ).verdict

    def assertion_value(
        self,
        kb: str,
        individual: str,
        concept: str,
        deadline_ms: Optional[float] = None,
        **options,
    ) -> Optional[FourValue]:
        """The Belnap value of ``C(a)`` (``None`` when degraded UNKNOWN)."""
        return self.probe(
            ProbeRequest(
                kind="assertion_value",
                kb=kb,
                individual=individual,
                concept=concept,
                deadline_ms=deadline_ms,
                **options,
            )
        ).four_value

    # -- operational endpoints ---------------------------------------
    def _get(self, path: str, timeout: float = 5.0) -> tuple:
        try:
            with urllib.request.urlopen(
                f"{self.base_url}{path}", timeout=timeout
            ) as raw:
                return raw.status, raw.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode("utf-8", errors="replace")

    def healthy(self) -> bool:
        """Whether ``/healthz`` answers 200 (liveness)."""
        try:
            return self._get("/healthz")[0] == 200
        except (urllib.error.URLError, ConnectionError, socket.timeout):
            return False

    def ready(self) -> bool:
        """Whether ``/readyz`` answers 200 (full serving capacity)."""
        try:
            return self._get("/readyz")[0] == 200
        except (urllib.error.URLError, ConnectionError, socket.timeout):
            return False

    def metrics(self) -> str:
        """The raw Prometheus text of ``/metrics``."""
        status, body = self._get("/metrics")
        if status != 200:
            raise ServiceUnavailable(f"/metrics answered HTTP {status}")
        return body

    def trace(self, trace_id: str, timeout: float = 5.0) -> List[Span]:
        """The reassembled span forest of one served request.

        Fetches ``GET /trace/<id>`` (use the ``trace_id`` attached to a
        probe's response) and reconstructs the spans.  Raises
        :class:`ServiceUnavailable` when the trace is unknown — the
        store is bounded, so old traces expire.
        """
        status, body = self._get(f"/trace/{trace_id}", timeout=timeout)
        if status != 200:
            raise ServiceUnavailable(
                f"/trace/{trace_id} answered HTTP {status}: {body[:200]}"
            )
        return read_spans_jsonl(body)

    def journal(self, timeout: float = 5.0) -> List[dict]:
        """The server's recent request-journal records (oldest first)."""
        status, body = self._get("/journal", timeout=timeout)
        if status != 200:
            raise ServiceUnavailable(f"/journal answered HTTP {status}")
        return [
            json.loads(line) for line in body.splitlines() if line.strip()
        ]
