"""The fault-tolerant reasoning service: ``repro serve`` and its client.

Everything the library answers locally — four-valued satisfiability,
instance and subsumption checks, Belnap assertion values, all with the
degradation semantics of :mod:`repro.dl.budget` — served over HTTP by a
long-lived, stdlib-only daemon that loads each ontology once and keeps
its caches warm across requests.  The layers:

* :mod:`repro.serve.protocol` — the versioned JSON wire schema
  (requests, responses, UNKNOWN round-tripping);
* :mod:`repro.serve.pool` — KB registry plus the supervised,
  KB-sharded worker process pool (crash isolation, stall escalation,
  exponential-backoff restarts, circuit breaker);
* :mod:`repro.serve.server` — the HTTP front: admission control with
  bounded queueing and 429 backpressure, deadline-to-Budget conversion,
  ``/healthz`` / ``/readyz`` / ``/metrics`` / ``/trace/<id>`` /
  ``/journal``, SIGTERM draining;
* :mod:`repro.serve.journal` — the structured request journal (one
  JSON line per request, slow-or-UNKNOWN trace capture) and the
  bounded :class:`TraceStore` behind ``GET /trace/<id>``;
* :mod:`repro.serve.client` — :class:`ReproClient`, retrying only
  idempotent probes with jittered exponential backoff, minting the
  trace context every probe carries.

See ``docs/GUIDE.md`` section 10 for a worked tour and
``docs/ARCHITECTURE.md`` for the invariants the chaos suite enforces.
"""

from .client import ReproClient, ServiceUnavailable
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalEntry,
    RequestJournal,
    TraceStore,
    derive_execution,
)
from .pool import InlineExecutor, KBRegistry, WorkerPool, execute_probe
from .protocol import (
    PROBE_KINDS,
    PROTOCOL_VERSION,
    ProbeRequest,
    ProbeResponse,
    ProtocolError,
    verdict_from_wire,
    verdict_to_wire,
)
from .server import ReproServer, ServeMetrics

__all__ = [
    "PROBE_KINDS",
    "PROTOCOL_VERSION",
    "ProbeRequest",
    "ProbeResponse",
    "ProtocolError",
    "verdict_from_wire",
    "verdict_to_wire",
    "KBRegistry",
    "execute_probe",
    "WorkerPool",
    "InlineExecutor",
    "ReproServer",
    "ServeMetrics",
    "JOURNAL_SCHEMA_VERSION",
    "JournalEntry",
    "RequestJournal",
    "TraceStore",
    "derive_execution",
    "ReproClient",
    "ServiceUnavailable",
]
