"""The structured request journal and the in-memory trace store.

Two request-scoped memories the server keeps besides ``/metrics``:

* :class:`RequestJournal` — one deterministic JSON record per request
  (trace id, kb, kind, status, degradation reason, duration, cache
  hit, engine used, worker incarnation), held in a bounded ring,
  optionally appended to a JSONL sink file, with *automatic capture*:
  the full span forest of a slow-or-UNKNOWN request is written to
  ``<capture_dir>/<trace_id>.jsonl`` under the latency/verdict policy,
  so the trace of the request worth debugging is already on disk when
  the operator goes looking;
* :class:`TraceStore` — the bounded, thread-safe map behind
  ``GET /trace/<id>``: reassembled span forests keyed by trace id,
  evicting oldest-first.

Journal records are "deterministic" in the schema sense: a fixed key
set (absent values are explicit ``null``), sorted keys, no volatile
fields beyond the ids and timings the record exists to report.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.export import spans_to_jsonl
from ..obs.spans import Span

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalEntry",
    "RequestJournal",
    "TraceStore",
    "derive_execution",
]

#: Bumped whenever a journal field is added, renamed, or re-typed.
JOURNAL_SCHEMA_VERSION = 1


def derive_execution(
    roots: Sequence[Span],
) -> Tuple[Optional[bool], Optional[str]]:
    """``(cache_hit, engine)`` read off a request's span forest.

    ``cache_hit`` is the ``hit`` attribute of the ``cache_probe`` span
    (``None`` when no cache probe ran — e.g. tracing disabled or the
    request never reached a reasoner).  ``engine`` is which machinery
    decided the answer: ``"tableau"`` when a tableau ran (it is always
    the engine of last resort), else ``"saturation"``, else
    ``"cache"`` for a pure cache hit.
    """
    cache_hit: Optional[bool] = None
    saw_saturation = saw_tableau = False
    for root in roots:
        for span in root.walk():
            if span.name == "cache_probe" and cache_hit is None:
                hit = span.attributes.get("hit")
                if isinstance(hit, bool):
                    cache_hit = hit
            elif span.name == "saturation_run":
                saw_saturation = True
            elif span.name == "tableau_run":
                saw_tableau = True
    if saw_tableau:
        return cache_hit, "tableau"
    if saw_saturation:
        return cache_hit, "saturation"
    if cache_hit:
        return cache_hit, "cache"
    return cache_hit, None


@dataclass(frozen=True)
class JournalEntry:
    """One request's structured journal record (the line ``to_record``
    serialises).  ``duration_ms`` covers admission through response;
    ``worker``/``incarnation`` identify which pool process answered
    (``inline``/0 without fork workers, ``None`` when the request never
    reached the pool); ``captured`` is the capture-file path when the
    slow-or-UNKNOWN policy fired."""

    trace_id: str
    status: str
    duration_ms: float
    kind: Optional[str] = None
    kb: Optional[str] = None
    reason: Optional[str] = None
    request_id: Optional[str] = None
    cache_hit: Optional[bool] = None
    engine: Optional[str] = None
    worker: Optional[str] = None
    incarnation: Optional[int] = None
    captured: Optional[str] = None

    def to_record(self) -> Dict:
        """The JSON-able record: fixed key set, stable formatting."""
        return {
            "schema": JOURNAL_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "kind": self.kind,
            "kb": self.kb,
            "status": self.status,
            "reason": self.reason,
            "duration_ms": round(self.duration_ms, 3),
            "cache_hit": self.cache_hit,
            "engine": self.engine,
            "worker": self.worker,
            "incarnation": self.incarnation,
            "captured": self.captured,
        }


class RequestJournal:
    """A bounded, thread-safe journal of served requests.

    ``capacity`` bounds the in-memory ring (oldest entries fall off);
    ``sink_path`` appends every record as one JSON line; ``capture_dir``
    arms the capture policy: the span forest of a request that degraded
    to UNKNOWN (``capture_unknown``) or took at least ``slow_ms``
    milliseconds is written to ``<capture_dir>/<trace_id>.jsonl``.
    Capture failures are swallowed — the journal must never fail a
    request.
    """

    def __init__(
        self,
        capacity: int = 1024,
        sink_path: Optional[str] = None,
        capture_dir: Optional[str] = None,
        slow_ms: float = 1000.0,
        capture_unknown: bool = True,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._lock = threading.Lock()
        self._entries: collections.deque = collections.deque(maxlen=capacity)
        self._sink_path = sink_path
        self._sink = open(sink_path, "a") if sink_path else None
        self.capture_dir = capture_dir
        self.slow_ms = slow_ms
        self.capture_unknown = capture_unknown
        self.lines_total = 0
        self.captured_total = 0

    def should_capture(self, status: str, duration_ms: float) -> bool:
        """Whether the slow-or-UNKNOWN policy fires for this request."""
        if self.capture_dir is None:
            return False
        if self.capture_unknown and status == "unknown":
            return True
        return duration_ms >= self.slow_ms

    def record(
        self, entry: JournalEntry, roots: Optional[Sequence[Span]] = None
    ) -> JournalEntry:
        """Journal one request; returns the entry actually recorded.

        When the capture policy fires and a span forest was supplied,
        the forest is written to the capture dir first and the entry is
        re-issued with ``captured`` pointing at the file.
        """
        if (
            roots
            and entry.captured is None
            and self.should_capture(entry.status, entry.duration_ms)
        ):
            path = os.path.join(self.capture_dir, f"{entry.trace_id}.jsonl")
            try:
                with open(path, "w") as handle:
                    handle.write(spans_to_jsonl(roots))
            except OSError:
                path = None
            if path is not None:
                entry = dataclasses.replace(entry, captured=path)
        line = json.dumps(entry.to_record(), sort_keys=True)
        with self._lock:
            self._entries.append(entry)
            self.lines_total += 1
            if entry.captured is not None:
                self.captured_total += 1
            if self._sink is not None:
                try:
                    self._sink.write(line + "\n")
                    self._sink.flush()
                except (OSError, ValueError):
                    pass
        return entry

    def recent(self, count: Optional[int] = None) -> List[JournalEntry]:
        """The newest ``count`` entries (all of them by default), oldest
        first — the order a log reader expects."""
        with self._lock:
            entries = list(self._entries)
        if count is not None:
            entries = entries[-count:]
        return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def close(self) -> None:
        """Close the sink file (idempotent)."""
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None


class TraceStore:
    """Bounded, thread-safe storage of reassembled trace forests.

    The memory behind ``GET /trace/<id>``: at most ``capacity`` traces,
    evicting oldest-first (a trace store is a debugging window, not an
    archive — the journal's capture policy is the durable path).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "collections.OrderedDict[str, List[Span]]" = (
            collections.OrderedDict()
        )

    def put(self, trace_id: str, roots: Sequence[Span]) -> None:
        """Store (or replace) one trace; evicts the oldest past capacity."""
        with self._lock:
            if trace_id in self._traces:
                self._traces.pop(trace_id)
            self._traces[trace_id] = list(roots)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[List[Span]]:
        """The stored forest, or ``None`` for unknown/evicted ids."""
        with self._lock:
            roots = self._traces.get(trace_id)
            return list(roots) if roots is not None else None

    def ids(self) -> List[str]:
        """Stored trace ids, newest first."""
        with self._lock:
            return list(reversed(self._traces))

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
