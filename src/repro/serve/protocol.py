"""The wire protocol of the reasoning service: versioned JSON payloads.

One request/response pair per probe, symmetric with the library's
degrading verdict APIs so nothing is lost over the wire:

* :class:`ProbeRequest` — a four-valued reasoning question against a
  named KB, plus the client's resource envelope (``deadline_ms`` and the
  optional node/branch caps) that admission control converts into a
  :class:`~repro.dl.budget.Budget`;
* :class:`ProbeResponse` — a decided answer, a structured UNKNOWN
  carrying its :class:`~repro.dl.errors.DegradationReason` (the paper's
  stance under operational failure: degrade, never hang), a bounded
  429-style *rejection* with ``retry_after``, or a usage ``error``.

Both directions round-trip through JSON exactly
(:meth:`ProbeRequest.to_wire` / :meth:`ProbeRequest.from_wire`, same for
responses), including UNKNOWN verdicts: ``verdict_to_wire`` /
``verdict_from_wire`` preserve the reason and message so a client can
re-raise the server's degradation locally.  Response bodies contain no
volatile fields (no timestamps, no server-generated ids) — a repeated
probe against an unchanged KB yields a byte-identical body, the property
the server-level chaos suite pins after worker recovery.

Schema evolution: every payload carries ``schema``
(:data:`PROTOCOL_VERSION`); a server rejects newer schemas with a usage
error instead of guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..dl.budget import Verdict
from ..dl.errors import DegradationReason, ReproError
from ..fourvalued.truth import FourValue

__all__ = [
    "PROTOCOL_VERSION",
    "PROBE_KINDS",
    "CHAOS_KINDS",
    "IDEMPOTENT_KINDS",
    "ProtocolError",
    "ProbeRequest",
    "ProbeResponse",
    "verdict_to_wire",
    "verdict_from_wire",
]

#: Bumped whenever a wire field is added, renamed, or re-typed.
PROTOCOL_VERSION = 1

#: The reasoning probe kinds the service answers.
PROBE_KINDS: Tuple[str, ...] = (
    "satisfiable",
    "instance",
    "subsumption",
    "assertion_value",
)

#: Fault-injection probe kinds, honoured only by a server started with
#: ``chaos=True`` (the server-level chaos harness and the CI smoke job);
#: a production server answers them with a usage error.
CHAOS_KINDS: Tuple[str, ...] = ("debug_crash", "debug_stall")

#: Kinds a client may safely retry: every reasoning probe is a pure
#: read.  The chaos kinds are deliberately excluded — re-sending a
#: crash/stall injection is not idempotent from the pool's viewpoint.
IDEMPOTENT_KINDS = frozenset(PROBE_KINDS)

#: Which optional argument fields each kind requires.
_REQUIRED_ARGS: Dict[str, Tuple[str, ...]] = {
    "satisfiable": (),
    "instance": ("individual", "concept"),
    "subsumption": ("sub", "sup"),
    "assertion_value": ("individual", "concept"),
    "debug_crash": (),
    "debug_stall": (),
}

_INCLUSION_KINDS = ("material", "internal", "strong")

#: Response statuses: ``ok`` (decided), ``unknown`` (structured
#: degradation), ``rejected`` (admission control), ``error`` (usage).
RESPONSE_STATUSES = ("ok", "unknown", "rejected", "error")


class ProtocolError(ReproError):
    """A malformed or out-of-contract wire payload."""


def _require_str(record: dict, name: str) -> str:
    value = record.get(name)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"field {name!r} must be a non-empty string")
    return value


def _optional_number(record: dict, name: str):
    value = record.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"field {name!r} must be a number")
    return value


def _check_schema(record: dict) -> None:
    schema = record.get("schema", PROTOCOL_VERSION)
    if schema != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol schema {schema!r} "
            f"(this endpoint speaks {PROTOCOL_VERSION})"
        )


@dataclass(frozen=True)
class ProbeRequest:
    """One reasoning question against a named, pre-loaded KB.

    ``deadline_ms`` is the client's *remaining* budget for the whole
    round trip; admission control converts it into a wall-clock
    :class:`~repro.dl.budget.Budget` (a non-positive value is already
    over-deadline and degrades to UNKNOWN without running anything).
    ``max_nodes`` / ``max_branches`` tighten the search caps per probe.
    ``request_id`` is an opaque client correlation id, echoed verbatim
    in the response headers — never in the body, which stays
    deterministic.
    """

    kind: str
    kb: str
    individual: Optional[str] = None
    concept: Optional[str] = None
    sub: Optional[str] = None
    sup: Optional[str] = None
    inclusion: str = "internal"
    deadline_ms: Optional[float] = None
    max_nodes: Optional[int] = None
    max_branches: Optional[int] = None
    #: Chaos-only: how long a ``debug_stall`` probe wedges its worker.
    stall_s: float = 0.0
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in PROBE_KINDS and self.kind not in CHAOS_KINDS:
            raise ProtocolError(f"unknown probe kind {self.kind!r}")
        if not self.kb:
            raise ProtocolError("field 'kb' must be a non-empty string")
        if self.inclusion not in _INCLUSION_KINDS:
            raise ProtocolError(
                f"inclusion must be one of {_INCLUSION_KINDS}, "
                f"got {self.inclusion!r}"
            )
        for name in _REQUIRED_ARGS[self.kind]:
            if getattr(self, name) is None:
                raise ProtocolError(
                    f"probe kind {self.kind!r} requires field {name!r}"
                )

    @property
    def idempotent(self) -> bool:
        """Whether a client may safely re-send this request."""
        return self.kind in IDEMPOTENT_KINDS

    def to_wire(self) -> dict:
        """The JSON-able request record (omits unset optional fields)."""
        record: dict = {"schema": PROTOCOL_VERSION, "kind": self.kind, "kb": self.kb}
        for name in (
            "individual",
            "concept",
            "sub",
            "sup",
            "deadline_ms",
            "max_nodes",
            "max_branches",
            "request_id",
        ):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        if self.inclusion != "internal":
            record["inclusion"] = self.inclusion
        if self.stall_s:
            record["stall_s"] = self.stall_s
        return record

    @classmethod
    def from_wire(cls, record: object) -> "ProbeRequest":
        """Parse and validate one request record (raises :class:`ProtocolError`)."""
        if not isinstance(record, dict):
            raise ProtocolError("request body must be a JSON object")
        _check_schema(record)
        kind = _require_str(record, "kind")
        if kind not in PROBE_KINDS and kind not in CHAOS_KINDS:
            raise ProtocolError(f"unknown probe kind {kind!r}")
        max_nodes = _optional_number(record, "max_nodes")
        max_branches = _optional_number(record, "max_branches")
        stall = _optional_number(record, "stall_s") or 0.0
        return cls(
            kind=kind,
            kb=_require_str(record, "kb"),
            individual=record.get("individual"),
            concept=record.get("concept"),
            sub=record.get("sub"),
            sup=record.get("sup"),
            inclusion=record.get("inclusion", "internal"),
            deadline_ms=_optional_number(record, "deadline_ms"),
            max_nodes=None if max_nodes is None else int(max_nodes),
            max_branches=None if max_branches is None else int(max_branches),
            stall_s=float(stall),
            request_id=record.get("request_id"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ProbeRequest":
        """Parse a raw JSON body (malformed JSON is a :class:`ProtocolError`)."""
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"request body is not JSON: {error}") from None
        return cls.from_wire(record)


def verdict_to_wire(verdict: Verdict) -> dict:
    """The JSON-able form of a three-way verdict (UNKNOWN keeps its reason)."""
    if verdict.is_unknown():
        return {
            "value": None,
            "reason": verdict.reason.value,
            "message": verdict.message,
        }
    return {"value": bool(verdict)}


def verdict_from_wire(record: object) -> Verdict:
    """Reconstruct a :class:`~repro.dl.budget.Verdict` from its wire form.

    The exact inverse of :func:`verdict_to_wire`: decided verdicts map
    to the singletons, UNKNOWN verdicts keep their
    :class:`~repro.dl.errors.DegradationReason` and message.
    """
    if not isinstance(record, dict):
        raise ProtocolError("verdict must be a JSON object")
    value = record.get("value")
    if value is None:
        reason = record.get("reason")
        try:
            degradation = DegradationReason(reason)
        except ValueError:
            raise ProtocolError(
                f"unknown degradation reason {reason!r}"
            ) from None
        return Verdict.unknown(degradation, record.get("message", ""))
    if not isinstance(value, bool):
        raise ProtocolError(f"verdict value must be a boolean, got {value!r}")
    return Verdict.of(value)


@dataclass(frozen=True)
class ProbeResponse:
    """The structured outcome of one probe.

    ``status`` discriminates the shape:

    * ``"ok"`` — ``value`` holds the decided answer: a boolean for
      verdict probes, a Belnap value name (``TRUE`` / ``FALSE`` /
      ``BOTH`` / ``NEITHER``) for ``assertion_value``;
    * ``"unknown"`` — ``reason`` holds the degradation reason (HTTP
      504-style; ``worker_crash`` maps to 503);
    * ``"rejected"`` — admission control refused the request;
      ``retry_after`` is the server's backpressure hint in seconds;
    * ``"error"`` — the request itself was malformed (unknown KB,
      unparsable concept, bad schema).

    ``request_id`` and ``trace_id`` are client-side conveniences: the
    :class:`~repro.serve.client.ReproClient` copies them from the
    ``X-Request-Id`` / ``X-Trace-Id`` response headers so callers can
    fetch ``/trace/<id>`` for the probe they just ran.  They are
    deliberately excluded from :meth:`to_wire` — response *bodies*
    carry no volatile fields, the property the chaos suite
    byte-compares.
    """

    status: str
    kind: Optional[str] = None
    kb: Optional[str] = None
    value: Optional[object] = None
    reason: Optional[str] = None
    message: str = ""
    retry_after: Optional[float] = None
    #: Correlation ids from the response headers; never serialised.
    request_id: Optional[str] = None
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise ProtocolError(f"unknown response status {self.status!r}")

    @classmethod
    def from_verdict(
        cls, request: ProbeRequest, verdict: Verdict
    ) -> "ProbeResponse":
        """Wrap a three-way verdict for the wire."""
        if verdict.is_unknown():
            return cls(
                status="unknown",
                kind=request.kind,
                kb=request.kb,
                reason=verdict.reason.value,
                message=verdict.message,
            )
        return cls(
            status="ok", kind=request.kind, kb=request.kb, value=bool(verdict)
        )

    @classmethod
    def from_four_value(
        cls, request: ProbeRequest, bounded
    ) -> "ProbeResponse":
        """Wrap a :class:`~repro.four_dl.reasoner4.BoundedFourValue`."""
        if bounded.is_unknown():
            return cls(
                status="unknown",
                kind=request.kind,
                kb=request.kb,
                reason=bounded.reason.value,
                message=bounded.message,
            )
        return cls(
            status="ok",
            kind=request.kind,
            kb=request.kb,
            value=bounded.value.name,
        )

    @classmethod
    def unknown(
        cls,
        reason: DegradationReason,
        message: str = "",
        request: Optional[ProbeRequest] = None,
    ) -> "ProbeResponse":
        """A structured degradation (the service's 504-style answer)."""
        return cls(
            status="unknown",
            kind=request.kind if request is not None else None,
            kb=request.kb if request is not None else None,
            reason=reason.value,
            message=message,
        )

    @classmethod
    def rejected(cls, retry_after: float, message: str) -> "ProbeResponse":
        """A bounded admission-control rejection (429-style)."""
        return cls(status="rejected", retry_after=retry_after, message=message)

    @classmethod
    def error(cls, message: str) -> "ProbeResponse":
        """A usage error (malformed request, unknown KB, bad concept)."""
        return cls(status="error", message=message)

    @property
    def verdict(self) -> Verdict:
        """The response as a :class:`~repro.dl.budget.Verdict`.

        Only meaningful for boolean probes; UNKNOWN responses map back
        to the exact UNKNOWN verdict the server degraded to, so client
        code can branch on ``is_unknown()`` the same way local code does.
        """
        if self.status == "ok":
            if not isinstance(self.value, bool):
                raise ProtocolError(
                    f"response value {self.value!r} is not a boolean verdict"
                )
            return Verdict.of(self.value)
        if self.status == "unknown":
            return verdict_from_wire(
                {"value": None, "reason": self.reason, "message": self.message}
            )
        raise ProtocolError(f"no verdict in a {self.status!r} response")

    @property
    def four_value(self) -> Optional[FourValue]:
        """The Belnap value of an ``assertion_value`` answer (None if unknown)."""
        if self.status == "unknown":
            return None
        if self.status != "ok" or not isinstance(self.value, str):
            raise ProtocolError(
                f"no four-valued answer in this response: {self!r}"
            )
        try:
            return FourValue[self.value]
        except KeyError:
            raise ProtocolError(
                f"unknown four-valued answer {self.value!r}"
            ) from None

    def to_wire(self) -> dict:
        """The JSON-able response record (deterministic: no volatile fields)."""
        record: dict = {"schema": PROTOCOL_VERSION, "status": self.status}
        if self.kind is not None:
            record["kind"] = self.kind
        if self.kb is not None:
            record["kb"] = self.kb
        if self.status == "ok":
            record["value"] = self.value
        if self.reason is not None:
            record["reason"] = self.reason
        if self.message:
            record["message"] = self.message
        if self.retry_after is not None:
            record["retry_after"] = self.retry_after
        return record

    def to_json(self) -> str:
        """The canonical body text (sorted keys, so bodies byte-compare)."""
        return json.dumps(self.to_wire(), sort_keys=True)

    @classmethod
    def from_wire(cls, record: object) -> "ProbeResponse":
        """Parse one response record (raises :class:`ProtocolError`)."""
        if not isinstance(record, dict):
            raise ProtocolError("response body must be a JSON object")
        _check_schema(record)
        status = record.get("status")
        if status not in RESPONSE_STATUSES:
            raise ProtocolError(f"unknown response status {status!r}")
        return cls(
            status=status,
            kind=record.get("kind"),
            kb=record.get("kb"),
            value=record.get("value"),
            reason=record.get("reason"),
            message=record.get("message", ""),
            retry_after=_optional_number(record, "retry_after"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ProbeResponse":
        """Parse a raw JSON body."""
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"response body is not JSON: {error}") from None
        return cls.from_wire(record)
