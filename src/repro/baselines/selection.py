"""Consistent-subset selection baseline (Huang et al., IJCAI 2005).

The first of the paper's three families of approaches to inconsistency
(Section 1): *reason with consistent subsets chosen by a relevance
principle*.  Following Huang, van Harmelen & ten Teije, the selection
function is **syntactic relevance**: axioms are ranked by their symbol
distance from the query, and reasoning proceeds over the union of
relevance rings as long as that union stays consistent (the "linear
extension" strategy).

Answers are three-valued at the meta level:

* ``accepted``  — the selected consistent subset entails the query;
* ``rejected``  — the subset entails the query's negation;
* ``undetermined`` — neither (including the over-determined case where
  extension had to stop before reaching the whole KB).

This is the comparator the paper contrasts with: the selection approach
*ignores* conflicting axioms, while SHOIN(D)4 keeps them and localises
the contradiction (paper Section 5).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..dl import axioms as ax
from ..dl.budget import Budget, DegradationRecord
from ..dl.concepts import (
    Concept,
    Not,
    atomic_concepts,
    datatype_roles,
    nominals,
    object_roles,
)
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..dl.tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES

Symbol = str


def axiom_symbols(axiom: ax.Axiom) -> FrozenSet[Symbol]:
    """The signature symbols an axiom mentions (concepts, roles, individuals)."""
    symbols: Set[Symbol] = set()

    def from_concept(concept: Concept) -> None:
        symbols.update(a.name for a in atomic_concepts(concept))
        symbols.update(r.named.name for r in object_roles(concept))
        symbols.update(u.name for u in datatype_roles(concept))
        symbols.update(i.name for i in nominals(concept))

    if isinstance(axiom, ax.ConceptInclusion):
        from_concept(axiom.sub)
        from_concept(axiom.sup)
    elif isinstance(axiom, ax.ConceptEquivalence):
        from_concept(axiom.left)
        from_concept(axiom.right)
    elif isinstance(axiom, ax.RoleInclusion):
        symbols.add(axiom.sub.named.name)
        symbols.add(axiom.sup.named.name)
    elif isinstance(axiom, ax.DatatypeRoleInclusion):
        symbols.add(axiom.sub.name)
        symbols.add(axiom.sup.name)
    elif isinstance(axiom, ax.Transitivity):
        symbols.add(axiom.role.name)
    elif isinstance(axiom, ax.ConceptAssertion):
        symbols.add(axiom.individual.name)
        from_concept(axiom.concept)
    elif isinstance(axiom, ax.RoleAssertion):
        symbols.update(
            {axiom.role.named.name, axiom.source.name, axiom.target.name}
        )
    elif isinstance(axiom, ax.DataAssertion):
        symbols.update({axiom.role.name, axiom.source.name})
    elif isinstance(axiom, (ax.SameIndividual, ax.DifferentIndividuals)):
        symbols.update({axiom.left.name, axiom.right.name})
    return frozenset(symbols)


def query_symbols(individual: Individual, concept: Concept) -> FrozenSet[Symbol]:
    """The symbols of an instance query ``a : C``."""
    return axiom_symbols(ax.ConceptAssertion(individual, concept))


class SelectionReasoner:
    """Linear-extension reasoning over syntactically relevant subsets.

    With a ``budget``, ring-extension consistency checks and query
    entailment checks are bounded: an undecidable ring stops the
    extension (reasoning proceeds over the rings decided so far) and an
    undecidable query answers ``"undetermined"``; both are recorded in
    :attr:`degradations`.
    """

    name = "selection"

    def __init__(
        self,
        kb: KnowledgeBase,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        budget: Optional[Budget] = None,
    ):
        self.kb = kb
        self.axioms: List[ax.Axiom] = list(kb.axioms())
        self.symbols: List[FrozenSet[Symbol]] = [
            axiom_symbols(a) for a in self.axioms
        ]
        self._max_nodes = max_nodes
        self._max_branches = max_branches
        self._budget = budget
        #: Skip-and-record log of budget-exhausted selection/query steps.
        self.degradations: List[DegradationRecord] = []

    # ------------------------------------------------------------------
    # Relevance rings
    # ------------------------------------------------------------------
    def relevance_rings(
        self, individual: Individual, concept: Concept
    ) -> List[List[ax.Axiom]]:
        """Axioms grouped by syntactic distance from the query.

        Ring ``k`` holds the axioms first reached after ``k`` steps of
        "shares a symbol with" expansion from the query's symbols.
        Axioms never reached (disconnected from the query) are appended as
        a final ring so the strategy can still use the whole KB.
        """
        rings: List[List[ax.Axiom]] = []
        reached_symbols: Set[Symbol] = set(query_symbols(individual, concept))
        remaining = list(range(len(self.axioms)))
        while remaining:
            ring = [
                index
                for index in remaining
                if self.symbols[index] & reached_symbols
            ]
            if not ring:
                rings.append([self.axioms[i] for i in remaining])
                break
            rings.append([self.axioms[i] for i in ring])
            for index in ring:
                reached_symbols |= self.symbols[index]
            remaining = [i for i in remaining if i not in set(ring)]
        return rings

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def selected_subset(
        self, individual: Individual, concept: Concept
    ) -> KnowledgeBase:
        """The largest consistent union of relevance rings (linear extension)."""
        selected = KnowledgeBase()
        for depth, ring in enumerate(self.relevance_rings(individual, concept)):
            candidate = selected.copy()
            candidate.add(*ring)
            verdict = Reasoner(
                candidate,
                max_nodes=self._max_nodes,
                max_branches=self._max_branches,
            ).consistency_verdict(budget=self._budget)
            if verdict.is_true():
                selected = candidate
            else:
                if verdict.is_unknown():
                    # Skip-and-record: stop extending at the ring whose
                    # consistency could not be decided within budget.
                    self.degradations.append(
                        DegradationRecord(
                            context=f"relevance ring {depth}",
                            reason=verdict.reason,
                            message=verdict.message,
                        )
                    )
                break
        return selected

    def query(self, individual: Individual, concept: Concept) -> str:
        """``accepted`` / ``rejected`` / ``undetermined`` for ``a : C``.

        Budget-exhausted entailment checks degrade to ``"undetermined"``
        (recorded in :attr:`degradations`) instead of raising.
        """
        subset = self.selected_subset(individual, concept)
        reasoner = Reasoner(
            subset, max_nodes=self._max_nodes, max_branches=self._max_branches
        )
        positive = reasoner.instance_verdict(
            individual, concept, budget=self._budget
        )
        if positive.is_true():
            return "accepted"
        negative = reasoner.instance_verdict(
            individual, Not(concept), budget=self._budget
        )
        if negative.is_true():
            return "rejected"
        for direction, verdict in (("", positive), ("not ", negative)):
            if verdict.is_unknown():
                self.degradations.append(
                    DegradationRecord(
                        context=f"query {individual.name} : {direction}{concept}",
                        reason=verdict.reason,
                        message=verdict.message,
                    )
                )
        return "undetermined"

    def survey(
        self, queries: Iterable[Tuple[Individual, Concept]]
    ) -> Sequence[Tuple[Individual, Concept, str]]:
        """Run a batch of queries, returning (a, C, status) triples."""
        return [
            (individual, concept, self.query(individual, concept))
            for individual, concept in queries
        ]
