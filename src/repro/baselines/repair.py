"""Diagnosis and repair baseline (the paper's "second approach").

Section 1 of the paper lists three ways to handle inconsistent
ontologies; the second is to *diagnose and repair* the contradictions.
This module implements the standard axiom-pinpointing machinery:

* :func:`minimal_inconsistent_subsets` — the justifications for the
  inconsistency (MISes), found by deletion-based shrinking inside a
  bounded Reiter hitting-set tree;
* :func:`repairs` — the minimal hitting sets of the MISes: removing any
  repair restores consistency, and every axiom-minimal consistent
  restoration arises this way;
* :class:`RepairReasoner` — query answering under the three classical
  repair semantics: **IAR** (axioms in no justification), **cautious**
  (entailed under every repair) and **brave** (entailed under some
  repair).

The comparison the benchmarks draw: repair semantics *delete* information
to recover consistency, while SHOIN(D)4 keeps every axiom and localises
the conflict — and diagnosis itself is a useful companion to the
four-valued conflict report.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..dl.axioms import Axiom
from ..dl.concepts import Concept, Not
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..dl.tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES

AxiomSet = Tuple[Axiom, ...]


def _consistent(
    axioms: Sequence[Axiom], max_nodes: int, max_branches: int
) -> bool:
    kb = KnowledgeBase.of(axioms)
    return Reasoner(kb, max_nodes=max_nodes, max_branches=max_branches).is_consistent()


def shrink_to_minimal(
    axioms: Sequence[Axiom],
    max_nodes: int = DEFAULT_MAX_NODES,
    max_branches: int = DEFAULT_MAX_BRANCHES,
) -> AxiomSet:
    """One minimal inconsistent subset of an inconsistent axiom list.

    Deletion-based shrinking: drop each axiom in turn; if the rest stays
    inconsistent the axiom is redundant for the conflict and is removed.
    The result is subset-minimal (every proper subset is consistent).
    """
    core: List[Axiom] = list(axioms)
    index = 0
    while index < len(core):
        candidate = core[:index] + core[index + 1:]
        if not _consistent(candidate, max_nodes, max_branches):
            core = candidate
        else:
            index += 1
    return tuple(core)


def minimal_inconsistent_subsets(
    kb: KnowledgeBase,
    max_subsets: int = 10,
    max_nodes: int = DEFAULT_MAX_NODES,
    max_branches: int = DEFAULT_MAX_BRANCHES,
) -> List[FrozenSet[Axiom]]:
    """Up to ``max_subsets`` minimal inconsistent subsets (justifications).

    Reiter-style exploration: each found MIS spawns child branches that
    each remove one of its axioms; shrinking the remainder finds MISes
    missed so far.  With a large enough bound this enumerates all MISes;
    the bound keeps worst cases (exponentially many justifications)
    controlled.
    """
    all_axioms = list(kb.axioms())
    if _consistent(all_axioms, max_nodes, max_branches):
        return []
    found: List[FrozenSet[Axiom]] = []
    # Each frontier entry is a set of axioms removed from the full KB.
    frontier: List[FrozenSet[Axiom]] = [frozenset()]
    explored: Set[FrozenSet[Axiom]] = set()
    while frontier and len(found) < max_subsets:
        removed = frontier.pop(0)
        if removed in explored:
            continue
        explored.add(removed)
        remaining = [axiom for axiom in all_axioms if axiom not in removed]
        if _consistent(remaining, max_nodes, max_branches):
            continue
        mis = frozenset(shrink_to_minimal(remaining, max_nodes, max_branches))
        if mis not in found:
            found.append(mis)
        for axiom in mis:
            frontier.append(removed | {axiom})
    return found


def repairs(
    kb: KnowledgeBase,
    max_subsets: int = 10,
    max_repairs: int = 20,
    max_nodes: int = DEFAULT_MAX_NODES,
    max_branches: int = DEFAULT_MAX_BRANCHES,
) -> List[FrozenSet[Axiom]]:
    """Minimal hitting sets of the justifications: the candidate repairs.

    Removing any returned set makes the KB consistent; each is minimal
    (no proper subset is also a repair w.r.t. the found justifications).
    """
    justifications = minimal_inconsistent_subsets(
        kb, max_subsets=max_subsets, max_nodes=max_nodes, max_branches=max_branches
    )
    if not justifications:
        return []
    hitting_sets: List[FrozenSet[Axiom]] = [frozenset()]
    for justification in justifications:
        extended: List[FrozenSet[Axiom]] = []
        for partial in hitting_sets:
            if partial & justification:
                extended.append(partial)
            else:
                for axiom in sorted(justification, key=repr):
                    extended.append(partial | {axiom})
        # Keep only subset-minimal candidates, bounded.
        minimal: List[FrozenSet[Axiom]] = []
        for candidate in sorted(extended, key=len):
            if not any(kept <= candidate for kept in minimal):
                minimal.append(candidate)
            if len(minimal) >= max_repairs:
                break
        hitting_sets = minimal
    return hitting_sets


class RepairReasoner:
    """Query answering under repair semantics."""

    name = "repair"

    def __init__(
        self,
        kb: KnowledgeBase,
        max_subsets: int = 10,
        max_repairs: int = 20,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
    ):
        self.kb = kb
        self._max_nodes = max_nodes
        self._max_branches = max_branches
        self.justifications = minimal_inconsistent_subsets(
            kb, max_subsets=max_subsets, max_nodes=max_nodes,
            max_branches=max_branches,
        )
        self.repair_sets = repairs(
            kb,
            max_subsets=max_subsets,
            max_repairs=max_repairs,
            max_nodes=max_nodes,
            max_branches=max_branches,
        )
        self._repaired_reasoners = [
            Reasoner(
                KnowledgeBase.of(
                    axiom for axiom in kb.axioms() if axiom not in repair
                ),
                max_nodes=max_nodes,
                max_branches=max_branches,
            )
            for repair in (self.repair_sets or [frozenset()])
        ]
        blamed: Set[Axiom] = set()
        for justification in self.justifications:
            blamed |= justification
        self._free_reasoner = Reasoner(
            KnowledgeBase.of(
                axiom for axiom in kb.axioms() if axiom not in blamed
            ),
            max_nodes=max_nodes,
            max_branches=max_branches,
        )

    # ------------------------------------------------------------------
    # Diagnosis report
    # ------------------------------------------------------------------
    def blamed_axioms(self) -> FrozenSet[Axiom]:
        """Axioms appearing in at least one justification."""
        blamed: Set[Axiom] = set()
        for justification in self.justifications:
            blamed |= justification
        return frozenset(blamed)

    def free_axioms(self) -> FrozenSet[Axiom]:
        """Axioms in no justification (the IAR-safe part of the KB)."""
        return frozenset(self.kb.axioms()) - self.blamed_axioms()

    # ------------------------------------------------------------------
    # Query semantics
    # ------------------------------------------------------------------
    def iar_query(self, individual: Individual, concept: Concept) -> bool:
        """Entailment from the justification-free axioms only."""
        return self._free_reasoner.is_instance(individual, concept)

    def cautious_query(self, individual: Individual, concept: Concept) -> bool:
        """Entailment under *every* computed repair."""
        return all(
            reasoner.is_instance(individual, concept)
            for reasoner in self._repaired_reasoners
        )

    def brave_query(self, individual: Individual, concept: Concept) -> bool:
        """Entailment under *some* computed repair."""
        return any(
            reasoner.is_instance(individual, concept)
            for reasoner in self._repaired_reasoners
        )

    def query(self, individual: Individual, concept: Concept) -> str:
        """Three-valued verdict under cautious repair semantics."""
        if self.cautious_query(individual, concept):
            return "accepted"
        if self.cautious_query(individual, Not(concept)):
            return "rejected"
        return "undetermined"
