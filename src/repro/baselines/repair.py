"""Diagnosis and repair baseline (the paper's "second approach").

Section 1 of the paper lists three ways to handle inconsistent
ontologies; the second is to *diagnose and repair* the contradictions.
This module implements the standard axiom-pinpointing machinery:

* :func:`minimal_inconsistent_subsets` — the justifications for the
  inconsistency (MISes), found by deletion-based shrinking inside a
  bounded Reiter hitting-set tree;
* :func:`repairs` — the minimal hitting sets of the MISes: removing any
  repair restores consistency, and every axiom-minimal consistent
  restoration arises this way;
* :class:`RepairReasoner` — query answering under the three classical
  repair semantics: **IAR** (axioms in no justification), **cautious**
  (entailed under every repair) and **brave** (entailed under some
  repair).

The comparison the benchmarks draw: repair semantics *delete* information
to recover consistency, while SHOIN(D)4 keeps every axiom and localises
the conflict — and diagnosis itself is a useful companion to the
four-valued conflict report.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..dl.axioms import Axiom
from ..dl.budget import Budget, DegradationRecord, Verdict
from ..dl.concepts import Concept, Not
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..dl.stats import ReasonerStats
from ..dl.tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES

AxiomSet = Tuple[Axiom, ...]


def _consistency(
    axioms: Sequence[Axiom],
    max_nodes: int,
    max_branches: int,
    budget: Optional[Budget] = None,
    stats: Optional[ReasonerStats] = None,
) -> Verdict:
    kb = KnowledgeBase.of(axioms)
    reasoner = Reasoner(
        kb, max_nodes=max_nodes, max_branches=max_branches, stats=stats
    )
    return reasoner.consistency_verdict(budget=budget)


def _record(
    degradations: Optional[List[DegradationRecord]],
    context: str,
    verdict: Verdict,
) -> None:
    if degradations is not None:
        degradations.append(
            DegradationRecord(
                context=context, reason=verdict.reason, message=verdict.message
            )
        )


def shrink_to_minimal(
    axioms: Sequence[Axiom],
    max_nodes: int = DEFAULT_MAX_NODES,
    max_branches: int = DEFAULT_MAX_BRANCHES,
    budget: Optional[Budget] = None,
    degradations: Optional[List[DegradationRecord]] = None,
    stats: Optional[ReasonerStats] = None,
) -> AxiomSet:
    """One minimal inconsistent subset of an inconsistent axiom list.

    Deletion-based shrinking: drop each axiom in turn; if the rest stays
    inconsistent the axiom is redundant for the conflict and is removed.
    The result is subset-minimal (every proper subset is consistent).

    An undecidable deletion probe (``budget`` exhausted) keeps the axiom
    conservatively — the result is then a *sound but possibly
    non-minimal* inconsistent subset — and appends a
    :class:`~repro.dl.budget.DegradationRecord` to ``degradations``.
    """
    core: List[Axiom] = list(axioms)
    index = 0
    while index < len(core):
        candidate = core[:index] + core[index + 1:]
        verdict = _consistency(
            candidate, max_nodes, max_branches, budget, stats
        )
        if verdict.is_false():
            core = candidate
        else:
            if verdict.is_unknown():
                _record(degradations, f"shrink probe #{index}", verdict)
            index += 1
    return tuple(core)


def minimal_inconsistent_subsets(
    kb: KnowledgeBase,
    max_subsets: int = 10,
    max_nodes: int = DEFAULT_MAX_NODES,
    max_branches: int = DEFAULT_MAX_BRANCHES,
    budget: Optional[Budget] = None,
    degradations: Optional[List[DegradationRecord]] = None,
    stats: Optional[ReasonerStats] = None,
) -> List[FrozenSet[Axiom]]:
    """Up to ``max_subsets`` minimal inconsistent subsets (justifications).

    Reiter-style exploration: each found MIS spawns child branches that
    each remove one of its axioms; shrinking the remainder finds MISes
    missed so far.  With a large enough bound this enumerates all MISes;
    the bound keeps worst cases (exponentially many justifications)
    controlled.

    Frontier branches whose consistency probe exhausts ``budget`` are
    skipped and recorded in ``degradations`` instead of aborting the
    whole enumeration (the returned MISes are still genuine — only
    completeness of the enumeration degrades).
    """
    all_axioms = list(kb.axioms())
    overall = _consistency(all_axioms, max_nodes, max_branches, budget, stats)
    if overall.is_unknown():
        _record(degradations, "full-KB consistency", overall)
        return []
    if overall.is_true():
        return []
    found: List[FrozenSet[Axiom]] = []
    # Each frontier entry is a set of axioms removed from the full KB.
    frontier: List[FrozenSet[Axiom]] = [frozenset()]
    explored: Set[FrozenSet[Axiom]] = set()
    while frontier and len(found) < max_subsets:
        removed = frontier.pop(0)
        if removed in explored:
            continue
        explored.add(removed)
        remaining = [axiom for axiom in all_axioms if axiom not in removed]
        verdict = _consistency(
            remaining, max_nodes, max_branches, budget, stats
        )
        if verdict.is_unknown():
            _record(
                degradations,
                f"frontier branch (-{len(removed)} axioms)",
                verdict,
            )
            continue
        if verdict.is_true():
            continue
        mis = frozenset(
            shrink_to_minimal(
                remaining,
                max_nodes,
                max_branches,
                budget=budget,
                degradations=degradations,
                stats=stats,
            )
        )
        if mis not in found:
            found.append(mis)
        for axiom in mis:
            frontier.append(removed | {axiom})
    return found


def repairs(
    kb: KnowledgeBase,
    max_subsets: int = 10,
    max_repairs: int = 20,
    max_nodes: int = DEFAULT_MAX_NODES,
    max_branches: int = DEFAULT_MAX_BRANCHES,
    budget: Optional[Budget] = None,
    degradations: Optional[List[DegradationRecord]] = None,
    stats: Optional[ReasonerStats] = None,
) -> List[FrozenSet[Axiom]]:
    """Minimal hitting sets of the justifications: the candidate repairs.

    Removing any returned set makes the KB consistent; each is minimal
    (no proper subset is also a repair w.r.t. the found justifications).
    """
    justifications = minimal_inconsistent_subsets(
        kb,
        max_subsets=max_subsets,
        max_nodes=max_nodes,
        max_branches=max_branches,
        budget=budget,
        degradations=degradations,
        stats=stats,
    )
    if not justifications:
        return []
    hitting_sets: List[FrozenSet[Axiom]] = [frozenset()]
    for justification in justifications:
        extended: List[FrozenSet[Axiom]] = []
        for partial in hitting_sets:
            if partial & justification:
                extended.append(partial)
            else:
                for axiom in sorted(justification, key=repr):
                    extended.append(partial | {axiom})
        # Keep only subset-minimal candidates, bounded.
        minimal: List[FrozenSet[Axiom]] = []
        for candidate in sorted(extended, key=len):
            if not any(kept <= candidate for kept in minimal):
                minimal.append(candidate)
            if len(minimal) >= max_repairs:
                break
        hitting_sets = minimal
    return hitting_sets


class RepairReasoner:
    """Query answering under repair semantics.

    With a ``budget``, every consistency probe of the diagnosis phase is
    bounded; undecidable probes are skipped and listed in
    :attr:`degradations` instead of aborting construction, and queries
    whose entailment checks exhaust the budget answer ``"undetermined"``.

    ``stats`` (a shared :class:`~repro.dl.stats.ReasonerStats`) counts
    every tableau run the diagnosis and the repaired reasoners perform;
    a fresh instance is created when none is passed, exposed as
    :attr:`stats` either way.
    """

    name = "repair"

    def __init__(
        self,
        kb: KnowledgeBase,
        max_subsets: int = 10,
        max_repairs: int = 20,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        budget: Optional[Budget] = None,
        stats: Optional[ReasonerStats] = None,
    ):
        self.kb = kb
        self._max_nodes = max_nodes
        self._max_branches = max_branches
        self._budget = budget
        #: Work counters shared by every reasoner this instance creates.
        self.stats = stats if stats is not None else ReasonerStats()
        #: Skip-and-record log of budget-exhausted diagnosis/query steps.
        self.degradations: List[DegradationRecord] = []
        self.justifications = minimal_inconsistent_subsets(
            kb, max_subsets=max_subsets, max_nodes=max_nodes,
            max_branches=max_branches, budget=budget,
            degradations=self.degradations, stats=self.stats,
        )
        self.repair_sets = repairs(
            kb,
            max_subsets=max_subsets,
            max_repairs=max_repairs,
            max_nodes=max_nodes,
            max_branches=max_branches,
            budget=budget,
            degradations=self.degradations,
            stats=self.stats,
        )
        self._repaired_reasoners = [
            Reasoner(
                KnowledgeBase.of(
                    axiom for axiom in kb.axioms() if axiom not in repair
                ),
                max_nodes=max_nodes,
                max_branches=max_branches,
                stats=self.stats,
            )
            for repair in (self.repair_sets or [frozenset()])
        ]
        blamed: Set[Axiom] = set()
        for justification in self.justifications:
            blamed |= justification
        self._free_reasoner = Reasoner(
            KnowledgeBase.of(
                axiom for axiom in kb.axioms() if axiom not in blamed
            ),
            max_nodes=max_nodes,
            max_branches=max_branches,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Diagnosis report
    # ------------------------------------------------------------------
    def blamed_axioms(self) -> FrozenSet[Axiom]:
        """Axioms appearing in at least one justification."""
        blamed: Set[Axiom] = set()
        for justification in self.justifications:
            blamed |= justification
        return frozenset(blamed)

    def free_axioms(self) -> FrozenSet[Axiom]:
        """Axioms in no justification (the IAR-safe part of the KB)."""
        return frozenset(self.kb.axioms()) - self.blamed_axioms()

    # ------------------------------------------------------------------
    # Query semantics
    # ------------------------------------------------------------------
    def iar_query(self, individual: Individual, concept: Concept) -> bool:
        """Entailment from the justification-free axioms only."""
        return self._free_reasoner.is_instance(individual, concept)

    def cautious_query(self, individual: Individual, concept: Concept) -> bool:
        """Entailment under *every* computed repair."""
        return all(
            reasoner.is_instance(individual, concept)
            for reasoner in self._repaired_reasoners
        )

    def brave_query(self, individual: Individual, concept: Concept) -> bool:
        """Entailment under *some* computed repair."""
        return any(
            reasoner.is_instance(individual, concept)
            for reasoner in self._repaired_reasoners
        )

    def _cautious_verdict(
        self, individual: Individual, concept: Concept
    ) -> Verdict:
        """Cautious entailment as a degrading three-way verdict.

        FALSE dominates (some repair provably refutes), then UNKNOWN
        (some repair could not be decided within budget), then TRUE.
        """
        unknown: Optional[Verdict] = None
        for reasoner in self._repaired_reasoners:
            verdict = reasoner.instance_verdict(
                individual, concept, budget=self._budget
            )
            if verdict.is_false():
                return Verdict.FALSE
            if verdict.is_unknown():
                unknown = verdict
        return unknown if unknown is not None else Verdict.TRUE

    def query(self, individual: Individual, concept: Concept) -> str:
        """Three-valued verdict under cautious repair semantics.

        Budget-exhausted entailment checks degrade to ``"undetermined"``
        (recorded in :attr:`degradations`) instead of raising.
        """
        positive = self._cautious_verdict(individual, concept)
        if positive.is_true():
            return "accepted"
        negative = self._cautious_verdict(individual, Not(concept))
        if negative.is_true():
            return "rejected"
        for direction, verdict in (("", positive), ("not ", negative)):
            if verdict.is_unknown():
                _record(
                    self.degradations,
                    f"query {individual.name} : {direction}{concept}",
                    verdict,
                )
        return "undetermined"
