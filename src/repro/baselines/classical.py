"""The classical two-valued baseline (what the paper argues against).

Classical SHOIN(D) reasoning trivialises on inconsistency: an
unsatisfiable KB entails *every* assertion (ex falso quodlibet).  This
wrapper makes that behaviour measurable — :meth:`ClassicalBaseline.query`
answers entailment exactly like :class:`~repro.dl.reasoner.Reasoner`, and
:meth:`ClassicalBaseline.meaningful_answers` reports how many answers are
informative (zero once the KB is inconsistent, since everything is
entailed).  The paraconsistency benchmarks compare this against
:class:`~repro.four_dl.reasoner4.Reasoner4`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..dl.axioms import Axiom, ConceptAssertion
from ..dl.budget import Budget
from ..dl.concepts import Concept, Not
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..dl.tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES


class ClassicalBaseline:
    """Classical entailment, including its collapse on inconsistent input.

    A ``budget`` bounds every probe made through the wrapped
    :class:`~repro.dl.reasoner.Reasoner`; boolean entry points raise
    :class:`~repro.dl.errors.BudgetExceeded` on exhaustion while
    :meth:`query_status` degrades to ``"unknown"``.
    """

    name = "classical"

    def __init__(
        self,
        kb: KnowledgeBase,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        budget: Optional[Budget] = None,
    ):
        self.kb = kb
        self._budget = budget
        self.reasoner = Reasoner(
            kb,
            max_nodes=max_nodes,
            max_branches=max_branches,
            budget=budget,
        )

    def is_trivial(self) -> bool:
        """Whether every query is answered "yes" (KB inconsistent)."""
        return not self.reasoner.is_consistent()

    def query(self, individual: Individual, concept: Concept) -> bool:
        """Classical instance entailment ``KB |= a : C``."""
        return self.reasoner.is_instance(individual, concept)

    def query_status(self, individual: Individual, concept: Concept) -> str:
        """One of ``yes`` / ``no`` / ``both`` / ``unknown``.

        ``both`` means the KB entails ``a : C`` *and* ``a : not C``, the
        tell-tale of classical explosion (or an over-constrained a).
        ``unknown`` means a direction could not be decided within the
        configured budget.
        """
        positive = self.reasoner.instance_verdict(
            individual, concept, budget=self._budget
        )
        negative = self.reasoner.instance_verdict(
            individual, Not(concept), budget=self._budget
        )
        if positive.is_unknown() or negative.is_unknown():
            return "unknown"
        if positive.is_true() and negative.is_true():
            return "both"
        if positive.is_true():
            return "yes"
        return "no"

    def meaningful_answers(
        self, queries: Iterable[Tuple[Individual, Concept]]
    ) -> Dict[Tuple[Individual, Concept], str]:
        """Answers that are not explosion artefacts.

        Returns the status per query, with ``both`` marking answers that
        carry no information.  On a consistent KB this equals the honest
        entailment answers; on an inconsistent KB every entry is ``both``.
        """
        return {
            (individual, concept): self.query_status(individual, concept)
            for individual, concept in queries
        }
