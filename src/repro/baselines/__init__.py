"""Comparator approaches to inconsistent ontologies (paper Sections 1, 5).

Three baselines frame the evaluation of SHOIN(D)4:

* :class:`~repro.baselines.classical.ClassicalBaseline` — ordinary
  two-valued reasoning, which trivialises on inconsistency;
* :class:`~repro.baselines.selection.SelectionReasoner` — syntactic
  relevance selection of consistent subsets (Huang et al. 2005);
* :class:`~repro.baselines.stratified.StratifiedReasoner` — priority
  stratification (Benferhat et al. 2003).
"""

from .classical import ClassicalBaseline
from .repair import (
    RepairReasoner,
    minimal_inconsistent_subsets,
    repairs,
    shrink_to_minimal,
)
from .selection import SelectionReasoner, axiom_symbols, query_symbols
from .stratified import StratifiedReasoner, default_stratification

__all__ = [
    "ClassicalBaseline",
    "RepairReasoner",
    "minimal_inconsistent_subsets",
    "repairs",
    "shrink_to_minimal",
    "SelectionReasoner",
    "axiom_symbols",
    "query_symbols",
    "StratifiedReasoner",
    "default_stratification",
]
