"""Stratification baseline (Benferhat et al., SACMAT 2003 / possibilistic).

The paper's related work (Section 5): rank axioms into priority strata,
then reason with the *largest consistent prefix* of strata (the
possibilistic / "linear order" policy) or with strata added independently
axiom-by-axiom (the lexicographic refinement).  Conflicting lower-priority
axioms are simply dropped, unlike SHOIN(D)4 which keeps them.

Strata are given as an explicit priority (0 = most certain); the helper
:func:`default_stratification` reproduces the common TBox-over-ABox
heuristic used in practice when no domain knowledge is available.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dl.axioms import ABoxAxiom, Axiom, TBoxAxiom
from ..dl.budget import Budget, DegradationRecord, Verdict
from ..dl.concepts import Concept, Not
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..dl.tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES

Stratification = Sequence[Tuple[Axiom, int]]


def default_stratification(kb: KnowledgeBase) -> List[Tuple[Axiom, int]]:
    """TBox axioms at priority 0, ABox assertions at priority 1."""
    ranked: List[Tuple[Axiom, int]] = []
    for axiom in kb.tbox():
        ranked.append((axiom, 0))
    for axiom in kb.abox():
        ranked.append((axiom, 1))
    return ranked


class StratifiedReasoner:
    """Reasoning with the largest consistent prefix of priority strata.

    With a ``budget``, stratum-consistency checks and query entailment
    checks are bounded: an undecidable stratum is treated conservatively
    as breaking (its axioms are not retained) and an undecidable query
    answers ``"undetermined"``; both are recorded in
    :attr:`degradations`.
    """

    name = "stratified"

    def __init__(
        self,
        stratification: Stratification,
        lexicographic: bool = False,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
        budget: Optional[Budget] = None,
    ):
        self.stratification = list(stratification)
        self.lexicographic = lexicographic
        self._max_nodes = max_nodes
        self._max_branches = max_branches
        self._budget = budget
        #: Skip-and-record log of budget-exhausted selection/query steps.
        self.degradations: List[DegradationRecord] = []
        self._selected = self._select()
        self._reasoner = Reasoner(
            self._selected,
            max_nodes=max_nodes,
            max_branches=max_branches,
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _strata(self) -> List[List[Axiom]]:
        by_priority: Dict[int, List[Axiom]] = {}
        for axiom, priority in self.stratification:
            by_priority.setdefault(priority, []).append(axiom)
        return [by_priority[p] for p in sorted(by_priority)]

    def _consistency(self, kb: KnowledgeBase) -> Verdict:
        return Reasoner(
            kb, max_nodes=self._max_nodes, max_branches=self._max_branches
        ).consistency_verdict(budget=self._budget)

    def _record(self, context: str, verdict: Verdict) -> None:
        self.degradations.append(
            DegradationRecord(
                context=context, reason=verdict.reason, message=verdict.message
            )
        )

    def _select(self) -> KnowledgeBase:
        """The retained sub-KB under the configured policy.

        *Possibilistic* (default): add whole strata from most to least
        certain, stopping at the first stratum that breaks consistency
        (everything below the break is discarded — possibilistic
        "drowning").  *Lexicographic*: within the breaking stratum, keep
        each axiom that is individually consistent with what is already
        retained, and continue with later strata.

        A consistency probe that exhausts the budget is treated like a
        *failed* probe (the candidate is not retained — sound, since only
        provably consistent unions are reasoned over) and recorded.
        """
        selected = KnowledgeBase()
        for depth, stratum in enumerate(self._strata()):
            candidate = selected.copy()
            candidate.add(*stratum)
            verdict = self._consistency(candidate)
            if verdict.is_true():
                selected = candidate
                continue
            if verdict.is_unknown():
                self._record(f"stratum {depth}", verdict)
            if not self.lexicographic:
                break
            for axiom in stratum:
                candidate = selected.copy()
                candidate.add(axiom)
                verdict = self._consistency(candidate)
                if verdict.is_true():
                    selected = candidate
                elif verdict.is_unknown():
                    self._record(f"stratum {depth} axiom {axiom}", verdict)
        return selected

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    @property
    def retained_kb(self) -> KnowledgeBase:
        """The consistent sub-KB actually reasoned over."""
        return self._selected

    def dropped_axioms(self) -> List[Axiom]:
        """Axioms of the stratification that were discarded."""
        retained = list(self._selected.axioms())
        dropped = []
        for axiom, _priority in self.stratification:
            if axiom in retained:
                retained.remove(axiom)
            else:
                dropped.append(axiom)
        return dropped

    def query(self, individual: Individual, concept: Concept) -> str:
        """``accepted`` / ``rejected`` / ``undetermined`` over the retained KB.

        Budget-exhausted entailment checks degrade to ``"undetermined"``
        (recorded in :attr:`degradations`) instead of raising.
        """
        positive = self._reasoner.instance_verdict(
            individual, concept, budget=self._budget
        )
        if positive.is_true():
            return "accepted"
        negative = self._reasoner.instance_verdict(
            individual, Not(concept), budget=self._budget
        )
        if negative.is_true():
            return "rejected"
        for direction, verdict in (("", positive), ("not ", negative)):
            if verdict.is_unknown():
                self._record(
                    f"query {individual.name} : {direction}{concept}", verdict
                )
        return "undetermined"

    def survey(
        self, queries: Iterable[Tuple[Individual, Concept]]
    ) -> List[Tuple[Individual, Concept, str]]:
        """Run a batch of queries, returning (a, C, status) triples."""
        return [
            (individual, concept, self.query(individual, concept))
            for individual, concept in queries
        ]
