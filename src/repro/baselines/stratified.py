"""Stratification baseline (Benferhat et al., SACMAT 2003 / possibilistic).

The paper's related work (Section 5): rank axioms into priority strata,
then reason with the *largest consistent prefix* of strata (the
possibilistic / "linear order" policy) or with strata added independently
axiom-by-axiom (the lexicographic refinement).  Conflicting lower-priority
axioms are simply dropped, unlike SHOIN(D)4 which keeps them.

Strata are given as an explicit priority (0 = most certain); the helper
:func:`default_stratification` reproduces the common TBox-over-ABox
heuristic used in practice when no domain knowledge is available.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..dl.axioms import ABoxAxiom, Axiom, TBoxAxiom
from ..dl.concepts import Concept, Not
from ..dl.individuals import Individual
from ..dl.kb import KnowledgeBase
from ..dl.reasoner import Reasoner
from ..dl.tableau import DEFAULT_MAX_BRANCHES, DEFAULT_MAX_NODES

Stratification = Sequence[Tuple[Axiom, int]]


def default_stratification(kb: KnowledgeBase) -> List[Tuple[Axiom, int]]:
    """TBox axioms at priority 0, ABox assertions at priority 1."""
    ranked: List[Tuple[Axiom, int]] = []
    for axiom in kb.tbox():
        ranked.append((axiom, 0))
    for axiom in kb.abox():
        ranked.append((axiom, 1))
    return ranked


class StratifiedReasoner:
    """Reasoning with the largest consistent prefix of priority strata."""

    name = "stratified"

    def __init__(
        self,
        stratification: Stratification,
        lexicographic: bool = False,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_branches: int = DEFAULT_MAX_BRANCHES,
    ):
        self.stratification = list(stratification)
        self.lexicographic = lexicographic
        self._max_nodes = max_nodes
        self._max_branches = max_branches
        self._selected = self._select()
        self._reasoner = Reasoner(
            self._selected,
            max_nodes=max_nodes,
            max_branches=max_branches,
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _strata(self) -> List[List[Axiom]]:
        by_priority: Dict[int, List[Axiom]] = {}
        for axiom, priority in self.stratification:
            by_priority.setdefault(priority, []).append(axiom)
        return [by_priority[p] for p in sorted(by_priority)]

    def _consistent(self, kb: KnowledgeBase) -> bool:
        return Reasoner(
            kb, max_nodes=self._max_nodes, max_branches=self._max_branches
        ).is_consistent()

    def _select(self) -> KnowledgeBase:
        """The retained sub-KB under the configured policy.

        *Possibilistic* (default): add whole strata from most to least
        certain, stopping at the first stratum that breaks consistency
        (everything below the break is discarded — possibilistic
        "drowning").  *Lexicographic*: within the breaking stratum, keep
        each axiom that is individually consistent with what is already
        retained, and continue with later strata.
        """
        selected = KnowledgeBase()
        for stratum in self._strata():
            candidate = selected.copy()
            candidate.add(*stratum)
            if self._consistent(candidate):
                selected = candidate
                continue
            if not self.lexicographic:
                break
            for axiom in stratum:
                candidate = selected.copy()
                candidate.add(axiom)
                if self._consistent(candidate):
                    selected = candidate
        return selected

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    @property
    def retained_kb(self) -> KnowledgeBase:
        """The consistent sub-KB actually reasoned over."""
        return self._selected

    def dropped_axioms(self) -> List[Axiom]:
        """Axioms of the stratification that were discarded."""
        retained = list(self._selected.axioms())
        dropped = []
        for axiom, _priority in self.stratification:
            if axiom in retained:
                retained.remove(axiom)
            else:
                dropped.append(axiom)
        return dropped

    def query(self, individual: Individual, concept: Concept) -> str:
        """``accepted`` / ``rejected`` / ``undetermined`` over the retained KB."""
        if self._reasoner.is_instance(individual, concept):
            return "accepted"
        if self._reasoner.is_instance(individual, Not(concept)):
            return "rejected"
        return "undetermined"

    def survey(
        self, queries: Iterable[Tuple[Individual, Concept]]
    ) -> List[Tuple[Individual, Concept, str]]:
        """Run a batch of queries, returning (a, C, status) triples."""
        return [
            (individual, concept, self.query(individual, concept))
            for individual, concept in queries
        ]
